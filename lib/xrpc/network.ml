(* The simulated network: a registry of peers plus a cost model. Messages
   are real XML strings produced and parsed by the peers; only the wire is
   simulated, charging latency + bytes/bandwidth per message. Defaults
   model the paper's testbed (1 Gb/s Ethernet LAN).

   An optional fault layer decides the fate of every XRPC message —
   delivered, dropped, duplicated, truncated or delayed — from a seeded
   schedule (see Fault). With an empty spec the layer is bypassed
   entirely: accounting and wire bytes are identical to a fault-free
   build. Document fetches (data shipping) are never injected with
   faults; they model a dumb replica server that stays reachable when a
   peer's query endpoint crashes (DESIGN.md, "Graceful degradation"). *)

type t = {
  peers : (string, Peer.t) Hashtbl.t;
  bandwidth_bytes_per_s : float;
  latency_s : float;
  stats : Stats.t;
  mutable fault : Fault.t;
  journal_dir : string option;
  journals : (string, Journal.t) Hashtbl.t;
  mutable catalog : Xd_topo.Catalog.t option;
  mutable churn : Xd_topo.Churn.t;
  mutable sent : int;
  mutable overload : Overload.t option;
}

let create ?(bandwidth_bytes_per_s = 1e9 /. 8.) ?(latency_s = 1e-4)
    ?(fault = Fault.none) ?journal_dir () =
  {
    peers = Hashtbl.create 8;
    bandwidth_bytes_per_s;
    latency_s;
    stats = Stats.create ();
    fault;
    journal_dir;
    journals = Hashtbl.create 8;
    catalog = None;
    churn = Xd_topo.Churn.empty;
    sent = 0;
    overload = None;
  }

let faulty t = Fault.enabled t.fault
let set_catalog t cat = t.catalog <- Some cat
let set_churn t churn = t.churn <- churn
let set_overload t ov = t.overload <- Some ov

(* The admission layer is in force only when explicitly installed
   (--peer-capacity & co.); without it no deadline/queue arithmetic runs
   and the wire stays byte-identical to the unprotected build. *)
let overload_active t = Option.is_some t.overload

(* Pure wire time of a message of [bytes] — what a send of it would charge
   the simulated clock. Used to pre-subtract a message's own transmission
   from the deadline budget it carries. *)
let wire_s t bytes =
  t.latency_s +. (float_of_int bytes /. t.bandwidth_bytes_per_s)

(* Dynamic topology is in force only for a non-trivial catalog: an absent
   or empty catalog leaves every session behavior (routing, epoch attrs,
   batching) untouched, so the wire stays byte-identical to the static
   build. *)
let topo_active t =
  match t.catalog with
  | Some cat -> not (Xd_topo.Catalog.trivial cat)
  | None -> false

(* The outage is over: subsequent messages are delivered faithfully. Used
   by recovery drivers (and tests) to model "the network came back". *)
let heal t = t.fault <- Fault.none

(* Each peer owns one journal, shared by every session that serves it and
   surviving sessions — which is what lets a fresh coordinator session
   recover transactions an earlier crashed execution left behind. Every
   appended record ticks the shared journal.records metric. *)
let journal t peer =
  match Hashtbl.find_opt t.journals peer with
  | Some j -> j
  | None ->
    let j =
      match t.journal_dir with
      | Some dir -> Journal.open_file ~dir ~peer
      | None -> Journal.in_memory ~peer
    in
    let recs =
      Xd_obs.Metrics.counter (Stats.registry t.stats) "journal.records"
    in
    Journal.on_append j (fun _ -> Xd_obs.Metrics.incr recs);
    Hashtbl.replace t.journals peer j;
    j

let add_peer t peer = Hashtbl.replace t.peers (Peer.name peer) peer

let new_peer t name =
  let p = Peer.create name in
  add_peer t p;
  p

let find_peer t name =
  match Hashtbl.find_opt t.peers name with
  | Some p -> p
  | None -> Xd_lang.Env.dynamic_error "unknown peer %S" name

(* Account one message of [bytes] on the wire. *)
let transfer ?(kind = `Message) t bytes =
  (match kind with
  | `Message -> Stats.add_message t.stats ~bytes
  | `Document -> Stats.add_document t.stats ~bytes);
  Stats.add_network_s t.stats
    (t.latency_s +. (float_of_int bytes /. t.bandwidth_bytes_per_s))

type delivery = Delivered of { text : string; duplicated : bool } | Dropped

(* Put one XRPC message on the wire towards [dst]. The sender always pays
   for the transmission (the bytes left its interface even when the
   message is then lost); the fault layer decides what, if anything,
   arrives.

   [meta], when given, marks a telemetry substring of [text] occupying
   [len] bytes starting at offset [at] (the injected <trace> header).
   Telemetry is free: it is excluded from the billed byte count and from
   the fault layer's length-dependent decisions, and a truncation fault
   cuts the payload at the same payload offset it would have used had
   the header not been there. This keeps byte accounting and the seeded
   fault schedule identical with tracing on or off.

   [hidden], when given, lists further (at, len) substrings — the
   fixed-width deadline / retry-after attributes — that ARE billed (the
   budget is protocol payload) but are likewise invisible to the fault
   layer: same decisions, and truncation offsets mapped past them, as on
   a wire without deadlines. Ranges must be sorted and disjoint from
   each other and from [meta]. *)
let send ?meta ?(hidden = []) t ~dst text =
  (* Scripted membership churn fires on message counts, just before the
     triggering message is handled: an event scheduled at N affects how the
     N-th message is routed/answered. Deterministic by construction. *)
  t.sent <- t.sent + 1;
  (match t.catalog with
  | Some cat ->
    List.iter
      (fun _ev -> Stats.incr_churn_events t.stats)
      (Xd_topo.Churn.tick t.churn cat ~count:t.sent)
  | None -> ());
  let at, hlen = match meta with None -> (0, 0) | Some (a, l) -> (a, l) in
  let bytes = String.length text - hlen in
  let hidden_len = List.fold_left (fun acc (_, l) -> acc + l) 0 hidden in
  (* every range the fault layer must not see, ascending; [meta]'s is the
     only unbilled one *)
  let blind =
    List.sort compare (if hlen > 0 then (at, hlen) :: hidden else hidden)
  in
  transfer ~kind:`Message t bytes;
  if not (Fault.enabled t.fault) then Delivered { text; duplicated = false }
  else
    match Fault.decide t.fault ~dst ~len:(bytes - hidden_len) with
    | Fault.Pass -> Delivered { text; duplicated = false }
    | Fault.Drop_msg ->
      Stats.incr_faults ~kind:"drop" t.stats;
      Dropped
    | Fault.Duplicate ->
      Stats.incr_faults ~kind:"dup" t.stats;
      transfer ~kind:`Message t bytes;
      Delivered { text; duplicated = true }
    | Fault.Truncate_at n ->
      Stats.incr_faults ~kind:"truncate" t.stats;
      (* Cut at the fault layer's payload offset, mapped past every blind
         range in ascending order: a range before the cut rides along (or
         is lost) whole, one after it is untouched — the same payload
         bytes survive as on a wire without headers or deadlines. *)
      let cut =
        List.fold_left
          (fun c (a, l) -> if c <= a then c else c + l)
          n blind
      in
      Delivered { text = String.sub text 0 cut; duplicated = false }
    | Fault.Delay_by s ->
      Stats.incr_faults ~kind:"delay" t.stats;
      Stats.add_network_s t.stats s;
      Delivered { text; duplicated = false }
    | Fault.Restart_peer ->
      Stats.incr_faults ~kind:"restart" t.stats;
      Journal.crash_restart (journal t dst);
      Dropped
