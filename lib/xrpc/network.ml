(* The simulated network: a registry of peers plus a cost model. Messages
   are real XML strings produced and parsed by the peers; only the wire is
   simulated, charging latency + bytes/bandwidth per message. Defaults
   model the paper's testbed (1 Gb/s Ethernet LAN). *)

type t = {
  peers : (string, Peer.t) Hashtbl.t;
  bandwidth_bytes_per_s : float;
  latency_s : float;
  stats : Stats.t;
}

let create ?(bandwidth_bytes_per_s = 1e9 /. 8.) ?(latency_s = 1e-4) () =
  {
    peers = Hashtbl.create 8;
    bandwidth_bytes_per_s;
    latency_s;
    stats = Stats.create ();
  }

let add_peer t peer = Hashtbl.replace t.peers (Peer.name peer) peer

let new_peer t name =
  let p = Peer.create name in
  add_peer t p;
  p

let find_peer t name =
  match Hashtbl.find_opt t.peers name with
  | Some p -> p
  | None -> Xd_lang.Env.dynamic_error "unknown peer %S" name

(* Account one message of [bytes] on the wire. *)
let transfer ?(kind = `Message) t bytes =
  (match kind with
  | `Message ->
    t.stats.Stats.message_bytes <- t.stats.Stats.message_bytes + bytes;
    t.stats.Stats.messages <- t.stats.Stats.messages + 1
  | `Document ->
    t.stats.Stats.document_bytes <- t.stats.Stats.document_bytes + bytes;
    t.stats.Stats.documents_fetched <- t.stats.Stats.documents_fetched + 1);
  t.stats.Stats.network_s <-
    t.stats.Stats.network_s +. t.latency_s
    +. (float_of_int bytes /. t.bandwidth_bytes_per_s)
