(* The simulated network: a registry of peers plus a cost model. Messages
   are real XML strings produced and parsed by the peers; only the wire is
   simulated, charging latency + bytes/bandwidth per message. Defaults
   model the paper's testbed (1 Gb/s Ethernet LAN).

   An optional fault layer decides the fate of every XRPC message —
   delivered, dropped, duplicated, truncated or delayed — from a seeded
   schedule (see Fault). With an empty spec the layer is bypassed
   entirely: accounting and wire bytes are identical to a fault-free
   build. Document fetches (data shipping) are never injected with
   faults; they model a dumb replica server that stays reachable when a
   peer's query endpoint crashes (DESIGN.md, "Graceful degradation"). *)

type t = {
  peers : (string, Peer.t) Hashtbl.t;
  bandwidth_bytes_per_s : float;
  latency_s : float;
  stats : Stats.t;
  mutable fault : Fault.t;
  journal_dir : string option;
  journals : (string, Journal.t) Hashtbl.t;
}

let create ?(bandwidth_bytes_per_s = 1e9 /. 8.) ?(latency_s = 1e-4)
    ?(fault = Fault.none) ?journal_dir () =
  {
    peers = Hashtbl.create 8;
    bandwidth_bytes_per_s;
    latency_s;
    stats = Stats.create ();
    fault;
    journal_dir;
    journals = Hashtbl.create 8;
  }

let faulty t = Fault.enabled t.fault

(* The outage is over: subsequent messages are delivered faithfully. Used
   by recovery drivers (and tests) to model "the network came back". *)
let heal t = t.fault <- Fault.none

(* Each peer owns one journal, shared by every session that serves it and
   surviving sessions — which is what lets a fresh coordinator session
   recover transactions an earlier crashed execution left behind. *)
let journal t peer =
  match Hashtbl.find_opt t.journals peer with
  | Some j -> j
  | None ->
    let j =
      match t.journal_dir with
      | Some dir -> Journal.open_file ~dir ~peer
      | None -> Journal.in_memory ~peer
    in
    Hashtbl.replace t.journals peer j;
    j

let add_peer t peer = Hashtbl.replace t.peers (Peer.name peer) peer

let new_peer t name =
  let p = Peer.create name in
  add_peer t p;
  p

let find_peer t name =
  match Hashtbl.find_opt t.peers name with
  | Some p -> p
  | None -> Xd_lang.Env.dynamic_error "unknown peer %S" name

(* Account one message of [bytes] on the wire. *)
let transfer ?(kind = `Message) t bytes =
  (match kind with
  | `Message ->
    t.stats.Stats.message_bytes <- t.stats.Stats.message_bytes + bytes;
    t.stats.Stats.messages <- t.stats.Stats.messages + 1
  | `Document ->
    t.stats.Stats.document_bytes <- t.stats.Stats.document_bytes + bytes;
    t.stats.Stats.documents_fetched <- t.stats.Stats.documents_fetched + 1);
  t.stats.Stats.network_s <-
    t.stats.Stats.network_s +. t.latency_s
    +. (float_of_int bytes /. t.bandwidth_bytes_per_s)

type delivery = Delivered of { text : string; duplicated : bool } | Dropped

(* Put one XRPC message on the wire towards [dst]. The sender always pays
   for the transmission (the bytes left its interface even when the
   message is then lost); the fault layer decides what, if anything,
   arrives. *)
let send t ~dst text =
  let bytes = String.length text in
  transfer ~kind:`Message t bytes;
  if not (Fault.enabled t.fault) then Delivered { text; duplicated = false }
  else
    match Fault.decide t.fault ~dst ~len:bytes with
    | Fault.Pass -> Delivered { text; duplicated = false }
    | Fault.Drop_msg ->
      t.stats.Stats.faults <- t.stats.Stats.faults + 1;
      Dropped
    | Fault.Duplicate ->
      t.stats.Stats.faults <- t.stats.Stats.faults + 1;
      transfer ~kind:`Message t bytes;
      Delivered { text; duplicated = true }
    | Fault.Truncate_at n ->
      t.stats.Stats.faults <- t.stats.Stats.faults + 1;
      Delivered { text = String.sub text 0 n; duplicated = false }
    | Fault.Delay_by s ->
      t.stats.Stats.faults <- t.stats.Stats.faults + 1;
      t.stats.Stats.network_s <- t.stats.Stats.network_s +. s;
      Delivered { text; duplicated = false }
    | Fault.Restart_peer ->
      t.stats.Stats.faults <- t.stats.Stats.faults + 1;
      Journal.crash_restart (journal t dst);
      Dropped
