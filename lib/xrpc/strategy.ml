(* The four execution strategies compared throughout the paper's
   evaluation: pure data shipping (the W3C default: fn:doc fetches whole
   documents), and function shipping under the three parameter-passing
   semantics. *)

type t = Data_shipping | By_value | By_fragment | By_projection

let all = [ Data_shipping; By_value; By_fragment; By_projection ]

let to_string = function
  | Data_shipping -> "data-shipping"
  | By_value -> "pass-by-value"
  | By_fragment -> "pass-by-fragment"
  | By_projection -> "pass-by-projection"

let passing = function
  | Data_shipping -> Message.By_value (* unused: no calls generated *)
  | By_value -> Message.By_value
  | By_fragment -> Message.By_fragment
  | By_projection -> Message.By_projection
