(** Per-peer write-ahead journal for distributed XQUF transactions.

    Participants journal staged PULs and prepare/commit/abort progress;
    coordinators journal the transaction outline (begun, participants,
    decision, resolution). {!crash_restart} discards all volatile state
    and replays the records with presumed abort: staged-but-unprepared
    transactions are aborted, prepared ones stay in doubt awaiting the
    coordinator's decision. See PROTOCOL.md ("Transactions"). *)

type record =
  | Staged of { txn : string; req : string; pul : string }
      (** participant: a PUL staged for [txn] by request [req] ("" when the
          request carried no id) *)
  | Prepared of { txn : string }  (** participant voted yes *)
  | Committed of { txn : string }  (** staged PULs applied to the store *)
  | Aborted of { txn : string }  (** staged PULs discarded *)
  | Begun of { txn : string }  (** coordinator: 2PC started *)
  | Participant of { txn : string; host : string }
  | Decided of { txn : string }
      (** coordinator: commit decided (aborts are presumed, never journaled
          as decisions) *)
  | Resolved of { txn : string }
      (** coordinator: outcome propagated to every participant *)

type t

val in_memory : peer:string -> t
val open_file : dir:string -> peer:string -> t
(** File-backed journal at [<dir>/<peer>.journal]; existing records are
    replayed as a crash-restart (presumed abort for unprepared stages).
    @raise Failure on a corrupt journal file. *)

val peer_name : t -> string
val records : t -> record list
(** Oldest first. *)

val append : t -> record -> unit
(** Append a raw record (used by the coordinator for outline records). *)

val on_append : t -> (record -> unit) -> unit
(** Install a telemetry observer called for every appended record
    (replay during {!open_file} happens before any observer can be
    installed and is not reported). One observer at a time; the default
    ignores. *)

(** {2 Participant operations} *)

val stage : t -> txn:string -> req:string -> pul:string -> bool
(** Stage a serialized PUL. [false] (and no journaling) when [req] was
    already staged for this transaction — retry dedup — or the transaction
    already finished. *)

val prepare : t -> txn:string -> bool
(** Vote: [true] pins the staged PULs until a decision arrives; [false]
    (unknown or aborted transaction) is a no vote — presumed abort. *)

val commit : t -> txn:string -> [ `Apply of string list | `Already | `Unknown ]
(** [`Apply puls]: apply these staged PULs, then call {!committed}.
    [`Already]: a duplicate commit — ack idempotently. [`Unknown]: no such
    live transaction (never staged, or presumed-aborted). *)

val committed : t -> txn:string -> unit
val abort : t -> txn:string -> unit

val in_doubt : t -> string list
(** Prepared transactions awaiting a decision, sorted. *)

val crash_restart : t -> unit
(** Simulate a crash: wipe all volatile state and replay the journal with
    presumed abort. *)

(** {2 Coordinator analysis} *)

val unresolved : t -> (string * string list * [ `Commit | `Abort ]) list
(** Transactions this coordinator began but never fully resolved, with
    their journaled participants and the decision to re-drive: [`Commit]
    iff a decision record was journaled, otherwise presumed [`Abort]. *)
