(** Bounded-capacity server model + caller-side circuit breakers on the
    simulated clock (PROTOCOL.md, "Deadlines & overload").

    Server side, per peer: [capacity] concurrent service slots and a
    bounded admission queue of [queue_cap] waiting requests; admitted
    work holds a slot for at least [service_s] simulated seconds per call
    unit, queueing delay is charged to the simulated clock, a full queue
    sheds with retryable [xrpc:server.overloaded] (+ retry-after), and a
    request whose remaining deadline budget cannot cover wait + service
    is rejected with non-retryable [xrpc:deadline.exceeded].

    Caller side, per peer: a closed → open → half-open breaker on
    consecutive overload/timeout-class failures, with a deterministic
    doubling probe schedule.

    Everything is arithmetic over the simulated clock: same inputs, same
    admissions, same transitions. *)

type config = private {
  capacity : int;  (** concurrent service slots per peer *)
  queue_cap : int;  (** waiting admissions beyond the slots *)
  service_s : float;  (** minimum service time per call unit *)
  threshold : int;  (** consecutive failures that open a breaker *)
  cooldown_s : float;  (** base open interval; doubles per re-open *)
}

type t

val create :
  ?capacity:int ->
  ?queue_cap:int ->
  ?service_s:float ->
  ?threshold:int ->
  ?cooldown_s:float ->
  unit ->
  t
(** Defaults: capacity 4, queue_cap 8, service_s 1ms, threshold 3,
    cooldown 50ms. Raises [Invalid_argument] on non-positive capacity /
    threshold or negative queue_cap / service_s. *)

val config : t -> config
val service_s : t -> float

(** {2 Admission} *)

type admission =
  | Admit of { start : float; finish : float; wait_s : float; depth : int }
      (** run from [start] (queue wait included) to [finish]; [depth] is
          how many admissions were queued ahead *)
  | Busy of { retry_after_s : float }
      (** queue full: shed, with the server's estimate of when a slot
          frees *)
  | Hopeless of { needed_s : float }
      (** the remaining deadline budget cannot cover wait + service *)

val admit :
  t -> peer:string -> now:float -> ?deadline:float -> units:int -> unit ->
  admission
(** One admission decision for an envelope of [units] calls (a batch
    occupies one slot for [units * service_s]). Mutates the peer's slot
    list on [Admit]. *)

val queue_depth : t -> peer:string -> now:float -> int
(** Admissions currently waiting (beyond the busy slots) at [now]. *)

(** {2 Circuit breakers} *)

type breaker_state = Closed | Open | Half_open

type verdict =
  | Proceed  (** breaker closed: call normally *)
  | Probe  (** half-open: this call is the probe *)
  | Shed of { until : float }  (** open: do not touch the wire *)

val breaker_check : t -> peer:string -> now:float -> verdict
(** Consult (and advance: an expired open becomes half-open) the
    breaker before a call. *)

val breaker_success : t -> peer:string -> unit
(** Any successful exchange closes the breaker and resets its counters. *)

val breaker_failure : t -> peer:string -> now:float -> unit
(** An overload/timeout-class failure. The [threshold]-th consecutive
    one opens the breaker for [cooldown_s * 2^(k-1)] (k-th consecutive
    open); a failed half-open probe re-opens immediately with the next
    doubling. *)

val breaker_opens : t -> int
(** Cumulative breaker opens across all peers (for stats). *)

val breaker_state : t -> peer:string -> breaker_state

val pp_breakers : Format.formatter -> t -> unit
(** One line per peer, sorted by name — the [--show-breakers] output. *)
