(* Per-execution cost accounting, matching the Fig. 8 breakdown:
   shred / local exec / (de)serialize / remote exec / network. Wall-clock
   components are measured; network time is simulated from real message
   bytes and the configured link parameters. *)

type t = {
  mutable message_bytes : int; (* SOAP request+response bytes *)
  mutable document_bytes : int; (* full documents fetched (data shipping) *)
  mutable messages : int;
  mutable documents_fetched : int;
  mutable serialize_s : float; (* message/document (de)serialization *)
  mutable shred_s : float; (* parsing messages/documents into stores *)
  mutable remote_exec_s : float; (* query evaluation at remote peers *)
  mutable network_s : float; (* simulated wire time *)
  mutable faults : int; (* wire faults injected (drop/dup/truncate/delay) *)
  mutable timeouts : int; (* calls that waited out the per-call timeout *)
  mutable retries : int; (* re-sent requests (after timeout or fault) *)
  mutable fallbacks : int; (* calls degraded to local data-shipped eval *)
  mutable dedup_hits : int; (* retried requests answered from the cache *)
  mutable dedup_evictions : int; (* dedup-cache entries evicted by the cap *)
  mutable txn_staged : int; (* update primitives staged at participants *)
  mutable txn_commits : int; (* distributed transactions committed *)
  mutable txn_aborts : int; (* distributed transactions aborted *)
}

let create () =
  {
    message_bytes = 0;
    document_bytes = 0;
    messages = 0;
    documents_fetched = 0;
    serialize_s = 0.;
    shred_s = 0.;
    remote_exec_s = 0.;
    network_s = 0.;
    faults = 0;
    timeouts = 0;
    retries = 0;
    fallbacks = 0;
    dedup_hits = 0;
    dedup_evictions = 0;
    txn_staged = 0;
    txn_commits = 0;
    txn_aborts = 0;
  }

let reset t =
  t.message_bytes <- 0;
  t.document_bytes <- 0;
  t.messages <- 0;
  t.documents_fetched <- 0;
  t.serialize_s <- 0.;
  t.shred_s <- 0.;
  t.remote_exec_s <- 0.;
  t.network_s <- 0.;
  t.faults <- 0;
  t.timeouts <- 0;
  t.retries <- 0;
  t.fallbacks <- 0;
  t.dedup_hits <- 0;
  t.dedup_evictions <- 0;
  t.txn_staged <- 0;
  t.txn_commits <- 0;
  t.txn_aborts <- 0

let total_bytes t = t.message_bytes + t.document_bytes

let now () = Unix.gettimeofday ()

let timed add f =
  let t0 = now () in
  let r = f () in
  add (now () -. t0);
  r

let time_serialize t f = timed (fun d -> t.serialize_s <- t.serialize_s +. d) f
let time_shred t f = timed (fun d -> t.shred_s <- t.shred_s +. d) f

let time_remote t f =
  (* remote exec excludes nested (de)serialize/shred costs, which the inner
     calls account into their own buckets; we subtract them here. *)
  let s0 = t.serialize_s and h0 = t.shred_s in
  let t0 = now () in
  let r = f () in
  let dt = now () -. t0 in
  let nested = t.serialize_s -. s0 +. (t.shred_s -. h0) in
  t.remote_exec_s <- t.remote_exec_s +. Float.max 0. (dt -. nested);
  r

let pp fmt t =
  Fmt.pf fmt
    "bytes: msg=%d doc=%d | msgs=%d docs=%d | serialize=%.4fs shred=%.4fs \
     remote=%.4fs network=%.4fs"
    t.message_bytes t.document_bytes t.messages t.documents_fetched
    t.serialize_s t.shred_s t.remote_exec_s t.network_s;
  if t.faults + t.timeouts + t.retries + t.fallbacks + t.dedup_hits > 0 then
    Fmt.pf fmt " | faults=%d timeouts=%d retries=%d fallbacks=%d dedup=%d"
      t.faults t.timeouts t.retries t.fallbacks t.dedup_hits;
  if t.dedup_evictions > 0 then Fmt.pf fmt " evictions=%d" t.dedup_evictions;
  if t.txn_staged + t.txn_commits + t.txn_aborts > 0 then
    Fmt.pf fmt " | txn: staged=%d commits=%d aborts=%d" t.txn_staged
      t.txn_commits t.txn_aborts
