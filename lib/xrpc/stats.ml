(* Per-execution cost accounting, matching the Fig. 8 breakdown:
   shred / local exec / (de)serialize / remote exec / network. Wall-clock
   components are measured; network time is simulated from real message
   bytes and the configured link parameters.

   The buckets live in an Xd_obs.Metrics registry; this module is the
   typed facade the runtime mutates and the executor/tests read. *)

module M = Xd_obs.Metrics

type t = {
  reg : M.t;
  message_bytes : M.counter;
  document_bytes : M.counter;
  messages : M.counter;
  documents_fetched : M.counter;
  calls : M.counter; (* remote execute-at calls issued (per-peer under
                        xrpc.calls{peer=...}) *)
  sched_groups : M.counter; (* overlap groups executed *)
  sched_overlapped : M.counter; (* calls that ran overlapped *)
  sched_saved_s : M.gauge; (* simulated wire time saved by overlap *)
  batch_envelopes : M.counter; (* batched request envelopes sent *)
  batch_calls : M.counter; (* calls coalesced into batch envelopes *)
  serialize_s : M.gauge;
  shred_s : M.gauge;
  remote_exec_s : M.gauge;
  network_s : M.gauge;
  faults : M.counter;
  timeouts : M.counter;
  retries : M.counter;
  fallbacks : M.counter;
  dedup_hits : M.counter;
  dedup_evictions : M.counter;
  txn_staged : M.counter;
  txn_commits : M.counter;
  txn_aborts : M.counter;
  forwarded : M.counter; (* <forward> redirects followed by callers *)
  topo_resolutions : M.counter; (* computed hosts resolved via the catalog *)
  topo_failovers : M.counter; (* reads re-routed to a replica of a down owner *)
  topo_epoch_aborts : M.counter; (* 2PC prepares refused on an epoch mismatch *)
  topo_churn_events : M.counter; (* scripted membership events fired *)
  remote_clamps : M.counter;
  (* The overload/breaker buckets register lazily, on first write: runs
     without the overload layer never touch them, so their registry
     dumps (and the cram tests pinning those) stay byte-identical to a
     build without the feature. *)
  ov_admitted : M.counter Lazy.t; (* admitted by the capacity model *)
  ov_shed : M.counter Lazy.t; (* shed on a full admission queue *)
  ov_deadline_rejects : M.counter Lazy.t; (* budget < wait + service *)
  ov_queue_wait_s : M.gauge Lazy.t; (* total queueing delay charged *)
  breaker_opens : M.counter Lazy.t; (* closed->open transitions *)
  breaker_shed : M.counter Lazy.t; (* shed locally by an open breaker *)
  breaker_probes : M.counter Lazy.t; (* half-open probes let through *)
  retry_budget_stops : M.counter Lazy.t; (* retries skipped: pool spent *)
  (* The codec buckets are lazy for the same reason: codec-off runs (and
     plans with no compilable call site) leave the registry untouched. *)
  codec_compiled : M.counter Lazy.t; (* requests emitted by compiled encoders *)
  codec_decodes : M.counter Lazy.t; (* responses read by compiled decoders *)
  codec_event_shreds : M.counter Lazy.t; (* subtrees shredded by the event path *)
  codec_bailouts : M.counter Lazy.t; (* compiled attempts that fell back *)
  hist_serialize : M.histogram;
  hist_shred : M.histogram;
  hist_remote : M.histogram;
  hist_message_bytes : M.histogram;
  (* trace id of the run in flight, if it is traced: observations made
     while set carry it as a histogram exemplar, so a tail outlier in an
     exposition links back to its trace. *)
  mutable exemplar : string option;
}

let byte_buckets = [ 128.; 512.; 2048.; 8192.; 32768.; 131072.; 524288. ]

(* The default decade ladder quantizes sub-millisecond simulated service
   times into one or two edges; a 1-2-5 ladder keeps adjacent
   percentiles in distinct buckets down to a microsecond. *)
let time_buckets =
  [ 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
    1e-2; 2e-2; 5e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10. ]

let create () =
  let reg = M.create () in
  {
    reg;
    message_bytes = M.counter reg "xrpc.bytes.message";
    document_bytes = M.counter reg "xrpc.bytes.document";
    messages = M.counter reg "xrpc.messages";
    documents_fetched = M.counter reg "xrpc.documents_fetched";
    calls = M.counter reg "xrpc.calls";
    sched_groups = M.counter reg "sched.groups";
    sched_overlapped = M.counter reg "sched.overlapped_calls";
    sched_saved_s = M.gauge reg "sched.saved_s";
    batch_envelopes = M.counter reg "xrpc.batch.envelopes";
    batch_calls = M.counter reg "xrpc.batch.calls";
    serialize_s = M.gauge reg "time.serialize_s";
    shred_s = M.gauge reg "time.shred_s";
    remote_exec_s = M.gauge reg "time.remote_exec_s";
    network_s = M.gauge reg "time.network_s";
    faults = M.counter reg "xrpc.faults";
    timeouts = M.counter reg "xrpc.timeouts";
    retries = M.counter reg "xrpc.retries";
    fallbacks = M.counter reg "xrpc.fallbacks";
    dedup_hits = M.counter reg "xrpc.dedup.hits";
    dedup_evictions = M.counter reg "xrpc.dedup.evictions";
    txn_staged = M.counter reg "txn.staged";
    txn_commits = M.counter reg "txn.commits";
    txn_aborts = M.counter reg "txn.aborts";
    forwarded = M.counter reg "xrpc.forwarded";
    topo_resolutions = M.counter reg "topo.resolutions";
    topo_failovers = M.counter reg "topo.failovers";
    topo_epoch_aborts = M.counter reg "topo.epoch_aborts";
    topo_churn_events = M.counter reg "topo.churn_events";
    remote_clamps = M.counter reg "time.remote_clamps";
    ov_admitted = lazy (M.counter reg "overload.admitted");
    ov_shed = lazy (M.counter reg "overload.shed");
    ov_deadline_rejects = lazy (M.counter reg "overload.deadline_rejects");
    ov_queue_wait_s = lazy (M.gauge reg "overload.queue_wait_s");
    breaker_opens = lazy (M.counter reg "overload.breaker.opens");
    breaker_shed = lazy (M.counter reg "overload.breaker.shed");
    breaker_probes = lazy (M.counter reg "overload.breaker.probes");
    retry_budget_stops = lazy (M.counter reg "overload.retry_budget_stops");
    codec_compiled = lazy (M.counter reg "codec.compiled");
    codec_decodes = lazy (M.counter reg "codec.decodes");
    codec_event_shreds = lazy (M.counter reg "codec.event_shreds");
    codec_bailouts = lazy (M.counter reg "codec.bailouts");
    hist_serialize = M.histogram ~buckets:time_buckets reg "hist.serialize_s";
    hist_shred = M.histogram ~buckets:time_buckets reg "hist.shred_s";
    hist_remote = M.histogram ~buckets:time_buckets reg "hist.remote_exec_s";
    hist_message_bytes = M.histogram ~buckets:byte_buckets reg
        "hist.message_bytes";
    exemplar = None;
  }

let set_exemplar t tid = t.exemplar <- tid

let registry t = t.reg
let reset t = M.reset t.reg

(* Readers *)
let message_bytes t = M.counter_value t.message_bytes
let document_bytes t = M.counter_value t.document_bytes
let messages t = M.counter_value t.messages
let documents_fetched t = M.counter_value t.documents_fetched
let calls t = M.counter_value t.calls

let calls_to t peer =
  M.counter_value (M.counter t.reg ("xrpc.calls{peer=" ^ peer ^ "}"))

let sched_groups t = M.counter_value t.sched_groups
let sched_overlapped t = M.counter_value t.sched_overlapped
let sched_saved_s t = M.gauge_value t.sched_saved_s
let batch_envelopes t = M.counter_value t.batch_envelopes
let batch_calls t = M.counter_value t.batch_calls
let serialize_s t = M.gauge_value t.serialize_s
let shred_s t = M.gauge_value t.shred_s
let remote_exec_s t = M.gauge_value t.remote_exec_s
let network_s t = M.gauge_value t.network_s
let faults t = M.counter_value t.faults
let timeouts t = M.counter_value t.timeouts
let retries t = M.counter_value t.retries
let fallbacks t = M.counter_value t.fallbacks
let dedup_hits t = M.counter_value t.dedup_hits
let dedup_evictions t = M.counter_value t.dedup_evictions
let txn_staged t = M.counter_value t.txn_staged
let txn_commits t = M.counter_value t.txn_commits
let txn_aborts t = M.counter_value t.txn_aborts
let forwarded t = M.counter_value t.forwarded
let topo_resolutions t = M.counter_value t.topo_resolutions
let topo_failovers t = M.counter_value t.topo_failovers
let topo_epoch_aborts t = M.counter_value t.topo_epoch_aborts
let topo_churn_events t = M.counter_value t.topo_churn_events

let peer_up_prefix = "xrpc.peer_up{peer="

let down_peers t =
  let pl = String.length peer_up_prefix in
  List.filter_map
    (fun n ->
      if String.length n > pl + 1 && String.sub n 0 pl = peer_up_prefix then
        if M.gauge_value (M.gauge t.reg n) < 0.5 then
          Some (String.sub n pl (String.length n - pl - 1))
        else None
      else None)
    (M.names t.reg)
let remote_clamps t = M.counter_value t.remote_clamps

(* Readers of the lazy buckets must not force them: forcing registers
   the metric, and a mere read (the executor snapshots every bucket on
   every run) must leave a feature-less registry dump untouched. *)
let lazy_counter l = if Lazy.is_val l then M.counter_value (Lazy.force l) else 0

let lazy_gauge l = if Lazy.is_val l then M.gauge_value (Lazy.force l) else 0.

let ov_admitted t = lazy_counter t.ov_admitted
let ov_shed t = lazy_counter t.ov_shed
let ov_deadline_rejects t = lazy_counter t.ov_deadline_rejects
let ov_queue_wait_s t = lazy_gauge t.ov_queue_wait_s
let breaker_opens t = lazy_counter t.breaker_opens
let breaker_shed t = lazy_counter t.breaker_shed
let breaker_probes t = lazy_counter t.breaker_probes
let retry_budget_stops t = lazy_counter t.retry_budget_stops
let codec_compiled t = lazy_counter t.codec_compiled
let codec_decodes t = lazy_counter t.codec_decodes
let codec_event_shreds t = lazy_counter t.codec_event_shreds
let codec_bailouts t = lazy_counter t.codec_bailouts

let queue_depth_prefix = "overload.queue_depth{peer="

let set_queue_depth ~peer t depth =
  M.set (M.gauge t.reg (queue_depth_prefix ^ peer ^ "}")) (float_of_int depth)

let total_bytes t = message_bytes t + document_bytes t

let is_empty t =
  messages t = 0 && documents_fetched t = 0 && total_bytes t = 0
  && network_s t = 0.
  && faults t + timeouts t + retries t + fallbacks t + dedup_hits t
     + dedup_evictions t = 0
  && txn_staged t + txn_commits t + txn_aborts t = 0
  && ov_admitted t + ov_shed t + ov_deadline_rejects t + breaker_shed t = 0

(* Writers *)
let add_message t ~bytes =
  M.incr ~by:bytes t.message_bytes;
  M.incr t.messages;
  M.observe ?exemplar:t.exemplar t.hist_message_bytes (float_of_int bytes)

let add_document t ~bytes =
  M.incr ~by:bytes t.document_bytes;
  M.incr t.documents_fetched

let add_network_s t s = M.add t.network_s s

(* Rewind/advance the simulated clock: the scheduler bills an overlap
   group by its longest member, not the sum. *)
let set_network_s t s = M.set t.network_s s

let incr_call ~peer t =
  M.incr t.calls;
  M.incr (M.counter t.reg ("xrpc.calls{peer=" ^ peer ^ "}"))

let add_sched_group t ~overlapped ~saved_s =
  M.incr t.sched_groups;
  M.incr ~by:overlapped t.sched_overlapped;
  M.add t.sched_saved_s saved_s

let add_batch t ~calls =
  M.incr t.batch_envelopes;
  M.incr ~by:calls t.batch_calls

let incr_faults ?kind t =
  M.incr t.faults;
  match kind with
  | None -> ()
  | Some k -> M.incr (M.counter t.reg ("xrpc.faults." ^ k))

let incr_timeouts t = M.incr t.timeouts
let incr_retries t = M.incr t.retries
let incr_fallbacks t = M.incr t.fallbacks
let incr_dedup_hits t = M.incr t.dedup_hits
let incr_dedup_evictions t = M.incr t.dedup_evictions
let add_txn_staged t n = M.incr ~by:n t.txn_staged
let incr_txn_commits t = M.incr t.txn_commits
let incr_txn_aborts t = M.incr t.txn_aborts
let incr_forwarded t = M.incr t.forwarded
let incr_topo_resolutions t = M.incr t.topo_resolutions
let incr_topo_failovers t = M.incr t.topo_failovers
let incr_topo_epoch_aborts t = M.incr t.topo_epoch_aborts
let incr_churn_events t = M.incr t.topo_churn_events

let add_admitted t ~wait_s =
  M.incr (Lazy.force t.ov_admitted);
  M.add (Lazy.force t.ov_queue_wait_s) wait_s

let incr_ov_shed t = M.incr (Lazy.force t.ov_shed)
let incr_deadline_rejects t = M.incr (Lazy.force t.ov_deadline_rejects)
let incr_breaker_opens t = M.incr (Lazy.force t.breaker_opens)
let incr_breaker_shed t = M.incr (Lazy.force t.breaker_shed)
let incr_breaker_probes t = M.incr (Lazy.force t.breaker_probes)
let incr_retry_budget_stops t = M.incr (Lazy.force t.retry_budget_stops)
let incr_codec_compiled t = M.incr (Lazy.force t.codec_compiled)
let incr_codec_decodes t = M.incr (Lazy.force t.codec_decodes)
let add_codec_event_shreds t n = M.incr ~by:n (Lazy.force t.codec_event_shreds)
let incr_codec_bailouts t = M.incr (Lazy.force t.codec_bailouts)

(* Per-peer liveness: 1 after the last exchange with the peer succeeded,
   0 after it exhausted its retry budget. Peers never contacted have no
   gauge at all, which keeps fault-free dumps unchanged. *)
let set_peer_up ~peer t up =
  M.set (M.gauge t.reg (peer_up_prefix ^ peer ^ "}")) (if up then 1. else 0.)

(* Timed scopes *)
let now () = Unix.gettimeofday ()

let timed t g h f =
  let t0 = now () in
  let r = f () in
  let d = now () -. t0 in
  M.add g d;
  M.observe ?exemplar:t.exemplar h d;
  r

let time_serialize t f = timed t t.serialize_s t.hist_serialize f
let time_shred t f = timed t t.shred_s t.hist_shred f

let time_remote t f =
  (* remote exec excludes nested (de)serialize/shred costs, which the inner
     calls account into their own buckets; we subtract them here. *)
  let s0 = serialize_s t and h0 = shred_s t in
  let t0 = now () in
  let r = f () in
  let dt = now () -. t0 in
  let nested = serialize_s t -. s0 +. (shred_s t -. h0) in
  let residue = dt -. nested in
  if residue < 0. then M.incr t.remote_clamps;
  let d = Float.max 0. residue in
  M.add t.remote_exec_s d;
  M.observe ?exemplar:t.exemplar t.hist_remote d;
  r

let pp fmt t =
  Fmt.pf fmt
    "bytes: msg=%d doc=%d | msgs=%d docs=%d | serialize=%.4fs shred=%.4fs \
     remote=%.4fs network=%.4fs"
    (message_bytes t) (document_bytes t) (messages t) (documents_fetched t)
    (serialize_s t) (shred_s t) (remote_exec_s t) (network_s t);
  if faults t + timeouts t + retries t + fallbacks t + dedup_hits t > 0 then
    Fmt.pf fmt " | faults=%d timeouts=%d retries=%d fallbacks=%d dedup=%d"
      (faults t) (timeouts t) (retries t) (fallbacks t) (dedup_hits t);
  if dedup_evictions t > 0 then Fmt.pf fmt " evictions=%d" (dedup_evictions t);
  if txn_staged t + txn_commits t + txn_aborts t > 0 then
    Fmt.pf fmt " | txn: staged=%d commits=%d aborts=%d" (txn_staged t)
      (txn_commits t) (txn_aborts t);
  if forwarded t + topo_resolutions t + topo_failovers t + topo_epoch_aborts t
     > 0
  then
    Fmt.pf fmt " | topo: resolutions=%d forwarded=%d failovers=%d \
                epoch-aborts=%d"
      (topo_resolutions t) (forwarded t) (topo_failovers t)
      (topo_epoch_aborts t);
  if sched_groups t > 0 then
    Fmt.pf fmt " | sched: groups=%d overlapped=%d saved=%.4fs"
      (sched_groups t) (sched_overlapped t) (sched_saved_s t);
  if batch_envelopes t > 0 then
    Fmt.pf fmt " | batch: envelopes=%d calls=%d" (batch_envelopes t)
      (batch_calls t);
  if ov_admitted t + ov_shed t + ov_deadline_rejects t > 0 then
    Fmt.pf fmt
      " | overload: admitted=%d shed=%d deadline-rejects=%d queue-wait=%.4fs"
      (ov_admitted t) (ov_shed t) (ov_deadline_rejects t) (ov_queue_wait_s t);
  if
    breaker_opens t + breaker_shed t + breaker_probes t
    + retry_budget_stops t > 0
  then
    Fmt.pf fmt " | breaker: opens=%d shed=%d probes=%d budget-stops=%d"
      (breaker_opens t) (breaker_shed t) (breaker_probes t)
      (retry_budget_stops t);
  if
    codec_compiled t + codec_decodes t + codec_event_shreds t
    + codec_bailouts t > 0
  then
    Fmt.pf fmt " | codec: compiled=%d decodes=%d event-shreds=%d bailouts=%d"
      (codec_compiled t) (codec_decodes t) (codec_event_shreds t)
      (codec_bailouts t)
