(* Per-peer write-ahead journal for distributed XQUF transactions.

   Every peer owns one journal. A participant journals staged PULs and its
   prepare/commit/abort progress; a coordinator additionally journals the
   transaction outline (begun, participants, decision, resolution). The
   journal is the *only* transaction state that survives a crash-restart:
   [crash_restart] throws away the volatile staged table and rebuilds it by
   replaying the records, applying presumed abort — a transaction that was
   staged but never prepared is aborted on recovery; a prepared one stays
   in doubt until the coordinator's decision arrives (or is re-driven by
   [Session.recover] from the coordinator's own journal).

   Records are one line each, tab-separated, with the serialized PUL
   escaped via [String.escaped]. A journal is in-memory by default and
   file-backed (append-only, [<dir>/<peer>.journal]) when the network was
   created with a journal directory. *)

type record =
  | Staged of { txn : string; req : string; pul : string }
  | Prepared of { txn : string }
  | Committed of { txn : string }
  | Aborted of { txn : string }
  | Begun of { txn : string }
  | Participant of { txn : string; host : string }
  | Decided of { txn : string }
  | Resolved of { txn : string }

let record_to_line = function
  | Staged { txn; req; pul } ->
    Printf.sprintf "staged\t%s\t%s\t%s" txn req (String.escaped pul)
  | Prepared { txn } -> "prepared\t" ^ txn
  | Committed { txn } -> "committed\t" ^ txn
  | Aborted { txn } -> "aborted\t" ^ txn
  | Begun { txn } -> "begun\t" ^ txn
  | Participant { txn; host } -> Printf.sprintf "participant\t%s\t%s" txn host
  | Decided { txn } -> "decided\t" ^ txn
  | Resolved { txn } -> "resolved\t" ^ txn

let record_of_line line =
  match String.split_on_char '\t' line with
  | [ "staged"; txn; req; pul ] -> Staged { txn; req; pul = Scanf.unescaped pul }
  | [ "prepared"; txn ] -> Prepared { txn }
  | [ "committed"; txn ] -> Committed { txn }
  | [ "aborted"; txn ] -> Aborted { txn }
  | [ "begun"; txn ] -> Begun { txn }
  | [ "participant"; txn; host ] -> Participant { txn; host }
  | [ "decided"; txn ] -> Decided { txn }
  | [ "resolved"; txn ] -> Resolved { txn }
  | _ -> failwith (Printf.sprintf "Journal: corrupt record %S" line)

(* Volatile staged-transaction state, rebuilt from records on restart. *)
type staged = {
  mutable puls : string list; (* staging order *)
  mutable reqs : string list; (* request-ids already staged (retry dedup) *)
  mutable prepared : bool;
  mutable outcome : [ `Pending | `Committed | `Aborted ];
}

type t = {
  peer : string;
  file : out_channel option;
  mutable recs : record list; (* newest first *)
  table : (string, staged) Hashtbl.t;
  mutable observer : record -> unit; (* telemetry hook, see on_append *)
}

let on_append t f = t.observer <- f

let peer_name t = t.peer
let records t = List.rev t.recs

let append t r =
  t.recs <- r :: t.recs;
  t.observer r;
  match t.file with
  | None -> ()
  | Some oc ->
    output_string oc (record_to_line r);
    output_char oc '\n';
    flush oc

let entry t txn =
  match Hashtbl.find_opt t.table txn with
  | Some s -> s
  | None ->
    let s = { puls = []; reqs = []; prepared = false; outcome = `Pending } in
    Hashtbl.replace t.table txn s;
    s

(* ---- participant operations ------------------------------------------ *)

let stage t ~txn ~req ~pul =
  let s = entry t txn in
  match s.outcome with
  | `Committed | `Aborted -> false (* late staging for a finished txn *)
  | `Pending ->
    if req <> "" && List.mem req s.reqs then false (* retried request *)
    else begin
      s.puls <- s.puls @ [ pul ];
      if req <> "" then s.reqs <- req :: s.reqs;
      append t (Staged { txn; req; pul });
      true
    end

let prepare t ~txn =
  match Hashtbl.find_opt t.table txn with
  | None -> false (* unknown: presumed abort — vote no *)
  | Some s -> (
    match s.outcome with
    | `Aborted -> false
    | `Committed -> true (* late duplicate; the decision already stuck *)
    | `Pending ->
      if not s.prepared then begin
        s.prepared <- true;
        append t (Prepared { txn })
      end;
      true)

let commit t ~txn =
  match Hashtbl.find_opt t.table txn with
  | None -> `Unknown
  | Some s -> (
    match s.outcome with
    | `Committed -> `Already
    | `Aborted -> `Unknown
    | `Pending -> `Apply s.puls)

let committed t ~txn =
  let s = entry t txn in
  if s.outcome <> `Committed then begin
    s.outcome <- `Committed;
    s.puls <- [];
    append t (Committed { txn })
  end

let abort t ~txn =
  let s = entry t txn in
  match s.outcome with
  | `Committed -> () (* abort-after-commit: a protocol violation; keep it *)
  | `Aborted -> ()
  | `Pending ->
    s.outcome <- `Aborted;
    s.puls <- [];
    append t (Aborted { txn })

let in_doubt t =
  Hashtbl.fold
    (fun txn s acc ->
      if s.outcome = `Pending && s.prepared then txn :: acc else acc)
    t.table []
  |> List.sort compare

(* ---- crash-restart ---------------------------------------------------- *)

let crash_restart t =
  Hashtbl.reset t.table;
  List.iter
    (fun r ->
      match r with
      | Staged { txn; req; pul } ->
        let s = entry t txn in
        if s.outcome = `Pending then begin
          s.puls <- s.puls @ [ pul ];
          if req <> "" then s.reqs <- req :: s.reqs
        end
      | Prepared { txn } -> (entry t txn).prepared <- true
      | Committed { txn } ->
        let s = entry t txn in
        s.outcome <- `Committed;
        s.puls <- []
      | Aborted { txn } ->
        let s = entry t txn in
        s.outcome <- `Aborted;
        s.puls <- []
      | Begun _ | Participant _ | Decided _ | Resolved _ -> ())
    (records t);
  (* presumed abort: staged but never prepared => gone *)
  let doomed =
    Hashtbl.fold
      (fun txn s acc ->
        if s.outcome = `Pending && not s.prepared then txn :: acc else acc)
      t.table []
  in
  List.iter (fun txn -> abort t ~txn) (List.sort compare doomed)

(* ---- coordinator analysis --------------------------------------------- *)

let unresolved t =
  let outlines = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun r ->
      let outline txn =
        match Hashtbl.find_opt outlines txn with
        | Some o -> o
        | None ->
          let o = (ref [], ref false, ref false) in
          order := txn :: !order;
          Hashtbl.replace outlines txn o;
          o
      in
      match r with
      | Begun { txn } -> ignore (outline txn)
      | Participant { txn; host } ->
        let parts, _, _ = outline txn in
        if not (List.mem host !parts) then parts := !parts @ [ host ]
      | Decided { txn } ->
        let _, decided, _ = outline txn in
        decided := true
      | Resolved { txn } ->
        let _, _, resolved = outline txn in
        resolved := true
      | Staged _ | Prepared _ | Committed _ | Aborted _ -> ())
    (records t);
  List.filter_map
    (fun txn ->
      let parts, decided, resolved = Hashtbl.find outlines txn in
      if !resolved then None
      else Some (txn, !parts, if !decided then `Commit else `Abort))
    (List.rev !order)

(* ---- construction ----------------------------------------------------- *)

let in_memory ~peer =
  { peer; file = None; recs = []; table = Hashtbl.create 4; observer = ignore }

let open_file ~dir ~peer =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir (peer ^ ".journal") in
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | line -> go (if line = "" then acc else record_of_line line :: acc)
        | exception End_of_file -> acc
      in
      let recs = go [] in
      close_in ic;
      recs
    end
    else []
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let t =
    {
      peer;
      file = Some oc;
      recs = existing;
      table = Hashtbl.create 4;
      observer = ignore;
    }
  in
  (* opening after a process restart IS a crash-restart: rebuild the staged
     table with presumed abort *)
  crash_restart t;
  t
