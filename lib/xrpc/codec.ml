(* Compiled per-call-site message codecs, generated from the wire-shape
   descriptors of Xd_shape.Shape (à la XML::Compile's compileMessage).

   Three specializations, all installed in Session *behind* the generic
   path and all falling back to it — so compiled and generic wires are
   byte-identical by construction, and any runtime shape the analysis
   did not predict simply costs one `codec.bailouts` tick:

   - a request encoder for call sites whose parameters are all provably
     atomic: the message is a handful of precomputed constant segments
     (envelope, attribute block, escaped query text, projection paths,
     the constant <fragments></fragments>) around the dynamic atom
     values and per-call envelope attributes (request-id, txn, epoch,
     deadline — emitted with the same fixed-width formatting as the
     generic writer);

   - a response decoder for call sites whose response is provably
     atomic: an exact prefix/suffix match around a flat scan of
     <atomic> items. It accepts a strict subset of what the generic
     parser accepts and agrees with it on every accepted byte string —
     faults, forwards, txn attributes, trace headers and corruption all
     miss the prefix and fall back;

   - an event shredder for everything else: the message is parsed once
     with the streaming Event core, and fragment/copy subtree content
     is diverted straight into Doc.Direct pre-order/size arrays as the
     events arrive — the decoder state machine *is* the element stack —
     leaving the protocol skeleton (with empty fragment/copy elements)
     as the message document plus a side table of prebuilt content
     documents keyed by the host element's pre-order index. *)

module X = Xd_xml
module Value = Xd_lang.Value
module Ast = Xd_lang.Ast
module Shape = Xd_shape.Shape

(* ---------------- envelope constants ---------------------------------- *)

let env_open, env_close =
  let s = Message.envelope "\x00" in
  match String.index_opt s '\x00' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> invalid_arg "Codec: envelope probe"

(* ---------------- compiled request encoders --------------------------- *)

type compiled_call = {
  cc_vertex : int;
  cc_caller : string;
      (** the session the encoder was compiled for — insurance against a
          vertex-id collision handing one session another's codec *)
  cc_head : string;  (** [<request passing=".." caller=".."] *)
  cc_attrs_tail : string;  (** constant trailing attributes + [>] *)
  cc_body : string;
      (** [<query>..</query>] + optional projection paths + the constant
          [<fragments></fragments>] + [<call>] *)
  cc_params : (Ast.var * string) list;
      (** per parameter: name and its [<sequence param="..">] opening *)
}

type compiled_resp = {
  rd_vertex : int;
  rd_prefix : string;  (** envelope + response head through [<sequence>] *)
  rd_suffix : string;
}

type t = {
  caller : string;
  calls : (int, compiled_call) Hashtbl.t;
  resps : (int, compiled_resp) Hashtbl.t;
  shapes : Shape.result;  (** the descriptors codegen consumed *)
}

let descriptors c = c.shapes.Shape.descriptors
let find_call c vertex = Hashtbl.find_opt c.calls vertex
let find_resp c vertex = Hashtbl.find_opt c.resps vertex

(* The constant attribute tail of every <request>, shared across sites. *)
let attrs_tail =
  let buf = Buffer.create 96 in
  Message.buf_attr buf "static-base-uri" "xdx://static/";
  Message.buf_attr buf "default-collation" "codepoint";
  Message.buf_attr buf "current-dateTime" "2009-03-29T00:00:00Z";
  Buffer.add_char buf '>';
  Buffer.contents buf

let compile_call ~passing ~caller (x : Ast.execute_at) (d : Shape.descriptor) =
  let head = Buffer.create 64 in
  Buffer.add_string head "<request";
  Message.buf_attr head "passing" (Message.passing_to_string passing);
  Message.buf_attr head "caller" caller;
  let body = Buffer.create 256 in
  Buffer.add_string body "<query>";
  Message.buf_text body (Xd_lang.Pp.expr_to_string x.Ast.body);
  Buffer.add_string body "</query>";
  (if passing = Message.By_projection && x.Ast.result_paths <> ([], []) then begin
     let u, r = x.Ast.result_paths in
     Buffer.add_string body "<projection-paths>";
     List.iter
       (fun p ->
         Buffer.add_string body "<used-path>";
         Message.buf_text body p;
         Buffer.add_string body "</used-path>")
       u;
     List.iter
       (fun p ->
         Buffer.add_string body "<returned-path>";
         Message.buf_text body p;
         Buffer.add_string body "</returned-path>")
       r;
     Buffer.add_string body "</projection-paths>"
   end);
  (* all parameters atomic: no node ever reaches the fragment planner,
     so the fragments section is this constant under every passing *)
  Buffer.add_string body "<fragments></fragments>";
  Buffer.add_string body "<call>";
  let params =
    List.map
      (fun (v, _) ->
        let b = Buffer.create 24 in
        Buffer.add_string b "<sequence";
        Message.buf_attr b "param" v;
        Buffer.add_char b '>';
        (v, Buffer.contents b))
      x.Ast.params
  in
  {
    cc_vertex = d.Shape.vertex;
    cc_caller = caller;
    cc_head = Buffer.contents head;
    cc_attrs_tail = attrs_tail;
    cc_body = Buffer.contents body;
    cc_params = params;
  }

let compile_resp ~passing (x : Ast.execute_at) (d : Shape.descriptor) =
  (* a by-projection request without projection paths is answered with
     by-fragment semantics, and the response says so (see Session's
     server side) — result_paths is static, so the demotion is too *)
  let resp_passing =
    match passing with
    | Message.By_projection when x.Ast.result_paths = ([], []) ->
      Message.By_fragment
    | p -> p
  in
  let b = Buffer.create 96 in
  Buffer.add_string b env_open;
  Buffer.add_string b "<response";
  Message.buf_attr b "passing" (Message.passing_to_string resp_passing);
  Buffer.add_string b "><fragments></fragments><sequence>";
  {
    rd_vertex = d.Shape.vertex;
    rd_prefix = Buffer.contents b;
    rd_suffix = "</sequence></response>" ^ env_close;
  }

let compile ~passing ~caller (shapes : Shape.result) (q : Ast.query) : t =
  (* pair each descriptor with its execute-at AST node (by exec id) *)
  let execs = Hashtbl.create 16 in
  let rec walk (e : Ast.expr) =
    (match e.Ast.desc with
    | Ast.Execute_at x -> Hashtbl.replace execs e.Ast.id x
    | _ -> ());
    List.iter walk (Ast.children e)
  in
  walk q.Ast.body;
  List.iter (fun f -> walk f.Ast.f_body) q.Ast.funcs;
  let calls = Hashtbl.create 8 and resps = Hashtbl.create 8 in
  List.iter
    (fun (d : Shape.descriptor) ->
      match Hashtbl.find_opt execs d.Shape.exec with
      | None -> ()
      | Some x ->
        if Shape.encoder_applicable d then
          Hashtbl.replace calls d.Shape.vertex (compile_call ~passing ~caller x d);
        if Shape.decoder_applicable d then
          Hashtbl.replace resps d.Shape.vertex (compile_resp ~passing x d))
    shapes.Shape.descriptors;
  { caller; calls; resps; shapes }

(* Atom runs per parameter, or None on any shape mismatch (node item,
   parameter list drift) — the caller then takes the generic path. *)
let rec atom_args (args : (Ast.var * Value.t) list) params =
  match (args, params) with
  | [], [] -> Some []
  | (v, value) :: ar, (pv, popen) :: pr when String.equal v pv -> (
    let rec atoms = function
      | [] -> Some []
      | Value.A a :: tl -> Option.map (fun r -> a :: r) (atoms tl)
      | Value.N _ :: _ -> None
    in
    match (atoms value, atom_args ar pr) with
    | Some aa, Some rest -> Some ((popen, aa) :: rest)
    | _ -> None)
  | _ -> None

let encode_request cc ~caller ?req_id ?txn ?epoch ?deadline args =
  if not (String.equal caller cc.cc_caller) then None
  else
  match atom_args args cc.cc_params with
  | None -> None
  | Some groups ->
    let buf = Buffer.create (512 + String.length cc.cc_body) in
    Buffer.add_string buf env_open;
    Buffer.add_string buf cc.cc_head;
    (match req_id with
    | Some id -> Message.buf_attr buf "request-id" id
    | None -> ());
    (match txn with Some t -> Message.buf_attr buf "txn" t | None -> ());
    (match epoch with
    | Some e -> Message.buf_attr buf "epoch" (string_of_int e)
    | None -> ());
    (match deadline with
    | Some d -> Message.buf_deadline buf d
    | None -> ());
    Buffer.add_string buf cc.cc_attrs_tail;
    Buffer.add_string buf cc.cc_body;
    List.iter
      (fun (popen, atoms) ->
        Buffer.add_string buf popen;
        List.iter (Message.write_atom buf) atoms;
        Buffer.add_string buf "</sequence>")
      groups;
    Buffer.add_string buf "</call></request>";
    Buffer.add_string buf env_close;
    Some (Buffer.contents buf)

(* ---------------- compiled response decoder --------------------------- *)

let sub_eq s at pat =
  let n = String.length pat in
  let rec go i = i = n || (s.[at + i] = pat.[i] && go (i + 1)) in
  go 0

(* Decode escaped character data in s.[p, stop): only the five
   predefined entities; anything else (numeric refs, stray '&') bails to
   the generic parser, which agrees on all five. The '&' search is
   bounded by [stop] — [String.index_from_opt] would scan to the end of
   the whole message on every entity-free atom, turning the flat decode
   quadratic. *)
let find_amp s p stop =
  let rec go i =
    if i >= stop then None else if s.[i] = '&' then Some i else go (i + 1)
  in
  go p

(* Called only when an '&' is known to sit in [p, stop) — the entity-free
   fast path is a plain [String.sub] at the caller. *)
let decode_text s p stop =
  let buf = Buffer.create (stop - p) in
  let rec go p =
    if p >= stop then Some (Buffer.contents buf)
    else
      match find_amp s p stop with
      | Some a -> (
        Buffer.add_substring buf s p (a - p);
        match String.index_from_opt s a ';' with
        | Some e when e < stop ->
          let ent = String.sub s (a + 1) (e - a - 1) in
          let decoded =
            match ent with
            | "lt" -> Some '<'
            | "gt" -> Some '>'
            | "amp" -> Some '&'
            | "apos" -> Some '\''
            | "quot" -> Some '"'
            | _ -> None
          in
          (match decoded with
          | Some c ->
            Buffer.add_char buf c;
            go (e + 1)
          | None -> None)
        | _ -> None)
      | None ->
        Buffer.add_substring buf s p (stop - p);
        go stop
  in
  go p

let atomic_open = "<atomic type=\""
let atomic_open_len = String.length atomic_open
let atomic_close = "</atomic>"
let atomic_close_len = String.length atomic_close

(* Scan the flat <atomic> items in text.[p, stop).

   [amp] is the position of the next '&' at or beyond [p], or -1 when
   there is none before the end of the message — maintained with one
   memchr ([String.index_from_opt]) per consumed '&' rather than a
   per-item bounded scan, so an entity-free response (the common case)
   checks each value against it in O(1) and decodes with a single
   [String.sub]. *)
let rec decode_items text p stop ~amp acc =
  if p = stop then Some (List.rev acc)
  else if p + atomic_open_len <= stop && sub_eq text p atomic_open then begin
    let tstart = p + atomic_open_len in
    match String.index_from_opt text tstart '"' with
    | Some tq when tq + 1 < stop && text.[tq + 1] = '>' -> (
      (* the type name is dispatched in place — no substring allocation
         per item on this innermost loop *)
      let tylen = tq - tstart in
      let ty_is pat =
        String.length pat = tylen && sub_eq text tstart pat
      in
      let vstart = tq + 2 in
      match String.index_from_opt text vstart '<' with
      | Some vend when vend + atomic_close_len <= stop
                       && sub_eq text vend atomic_close -> (
        (* '&' can only sit in character data: one strictly before
           [vend] is inside this value (the constant markup between
           values never contains one — [sub_eq] would have failed). *)
        let decoded =
          if amp >= 0 && amp < vend then decode_text text vstart vend
          else Some (String.sub text vstart (vend - vstart))
        in
        match decoded with
        | None -> None
        | Some s ->
          let atom =
            if ty_is "string" then Some (Value.String s)
            else if ty_is "integer" then
              Option.map (fun i -> Value.Integer i) (int_of_string_opt s)
            else if ty_is "double" then
              Option.map (fun f -> Value.Double f) (float_of_string_opt s)
            else if ty_is "boolean" then
              Some (Value.Boolean (String.equal s "true"))
            else Some (Value.Untyped s)
          in
          (match atom with
          | Some a ->
            let next = vend + atomic_close_len in
            let amp =
              if amp >= 0 && amp < next then
                match String.index_from_opt text next '&' with
                | Some a -> a
                | None -> -1
              else amp
            in
            decode_items text next stop ~amp (Value.A a :: acc)
          | None -> None))
      | _ -> None)
    | _ -> None
  end
  else None

let decode_response rd text : Value.t option =
  let n = String.length text in
  let plen = String.length rd.rd_prefix and slen = String.length rd.rd_suffix in
  if n < plen + slen then None
  else if not (sub_eq text 0 rd.rd_prefix) then None
  else if not (sub_eq text (n - slen) rd.rd_suffix) then None
  else
    let amp =
      match String.index_from_opt text plen '&' with Some a -> a | None -> -1
    in
    decode_items text plen (n - slen) ~amp []

(* ---------------- event shred fast path ------------------------------- *)

(* Is this element protocol-positioned subtree content we can divert?
   Only exact protocol positions route — a user element that happens to
   be named "fragment" or "copy" sits inside an already-routed subtree
   (fragment content, copy content) and never reaches this check. *)
let routable name parent attrs =
  match (name, parent) with
  | "fragment", "fragments" -> true
  | "copy", "sequence" -> (
    match List.assoc_opt "kind" attrs with
    | Some ("element" | "document") -> true
    | _ -> false)
  | _ -> false

type route = {
  rb : X.Doc.Direct.b;
  mutable rdepth : int;  (** open elements inside the routed subtree *)
  ridx : int;  (** the host element's pre index in the message doc *)
}

let event_parse text : X.Doc.t * (int, X.Doc.t) Hashtbl.t =
  let mb = X.Doc.Builder.create () in
  let prebuilt = Hashtbl.create 8 in
  let route = ref None in
  let stack = ref [] in
  let handler =
    {
      X.Event.start_element =
        (fun name attrs ->
          match !route with
          | Some r ->
            r.rdepth <- r.rdepth + 1;
            X.Doc.Direct.start_element r.rb name attrs
          | None ->
            X.Doc.Builder.start_element mb name attrs;
            let parent = match !stack with p :: _ -> p | [] -> "" in
            if routable name parent attrs then
              route :=
                Some
                  {
                    rb =
                      X.Doc.Direct.create ?uri:(List.assoc_opt "base-uri" attrs)
                        ();
                    rdepth = 0;
                    ridx = X.Doc.Builder.current_index mb;
                  }
            else stack := name :: !stack);
      end_element =
        (fun _name ->
          match !route with
          | Some r ->
            if r.rdepth = 0 then begin
              Hashtbl.replace prebuilt r.ridx (X.Doc.Direct.finish r.rb);
              route := None;
              X.Doc.Builder.end_element mb
            end
            else begin
              r.rdepth <- r.rdepth - 1;
              X.Doc.Direct.end_element r.rb
            end
          | None ->
            (match !stack with _ :: tl -> stack := tl | [] -> ());
            X.Doc.Builder.end_element mb);
      text =
        (fun s ->
          match !route with
          | Some r -> X.Doc.Direct.text r.rb s
          | None -> X.Doc.Builder.text mb s);
      comment =
        (fun s ->
          match !route with
          | Some r -> X.Doc.Direct.comment r.rb s
          | None -> X.Doc.Builder.comment mb s);
      pi =
        (fun target data ->
          match !route with
          | Some r -> X.Doc.Direct.pi r.rb target data
          | None -> X.Doc.Builder.pi mb target data);
    }
  in
  X.Event.parse ~strip_ws:false handler text;
  (X.Doc.Builder.finish mb, prebuilt)
