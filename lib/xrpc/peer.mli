(** A peer: a named XQuery engine owning a document store. Peers host the
    documents addressed as [xrpc://<name>/<doc>] and execute the function
    bodies shipped to them. *)

type t

val create : string -> t
val name : t -> string
val store : t -> Xd_xml.Store.t
val load_xml : t -> doc_name:string -> string -> Xd_xml.Doc.t
val load_tree : t -> doc_name:string -> Xd_xml.Doc.tree -> Xd_xml.Doc.t
val find_doc : t -> string -> Xd_xml.Doc.t option
val xrpc_uri : t -> string -> string
