(* Bounded-capacity server model + caller-side circuit breakers, all on
   the simulated clock (PROTOCOL.md, "Deadlines & overload").

   Server side, per peer: [capacity] concurrent service slots and a
   bounded admission queue of [queue_cap] waiting requests. Admitted work
   occupies a slot for at least [service_s] simulated seconds (batch
   envelopes occupy one slot for [units * service_s]); an arrival that
   finds every slot busy queues behind the earlier admissions, its
   queueing delay charged to the simulated clock exactly like wire time.
   An arrival that finds the queue full is shed with a retryable
   xrpc:server.overloaded fault carrying the server's own estimate of
   when a slot frees (retry-after). An arrival whose remaining deadline
   budget cannot cover queue wait + service time is rejected outright
   with non-retryable xrpc:deadline.exceeded — performing work the
   caller will throw away is the definition of overload collapse.

   Caller side, per peer: a closed -> open -> half-open circuit breaker.
   [threshold] consecutive overload/timeout-class failures open the
   breaker; while open, calls are shed locally (read-only bodies fall
   through the degradation/failover ladder) without touching the wire;
   after a cooldown — doubling on every consecutive re-open, fully
   deterministic — a single probe call is let through, and its outcome
   closes or re-opens the breaker.

   Everything here is arithmetic over the simulated clock: same inputs,
   same admissions, same breaker transitions. The QCheck determinism
   harness pins that. *)

type config = {
  capacity : int; (* concurrent service slots per peer *)
  queue_cap : int; (* waiting admissions beyond the slots *)
  service_s : float; (* minimum service time per call unit *)
  threshold : int; (* consecutive failures that open a breaker *)
  cooldown_s : float; (* base open interval; doubles per re-open *)
}

type breaker_state = Closed | Open | Half_open

type breaker = {
  mutable state : breaker_state;
  mutable failures : int; (* consecutive, since the last success *)
  mutable open_until : float;
  mutable level : int; (* consecutive opens, for cooldown doubling *)
  mutable opens : int; (* cumulative, for stats *)
}

type peer_state = {
  mutable slots : float list; (* end times of admitted, unfinished work *)
  breaker : breaker;
}

type t = { config : config; peers : (string, peer_state) Hashtbl.t }

let create ?(capacity = 4) ?(queue_cap = 8) ?(service_s = 0.001)
    ?(threshold = 3) ?(cooldown_s = 0.05) () =
  if capacity < 1 then invalid_arg "Overload.create: capacity < 1";
  if queue_cap < 0 then invalid_arg "Overload.create: queue_cap < 0";
  if service_s < 0. then invalid_arg "Overload.create: service_s < 0";
  if threshold < 1 then invalid_arg "Overload.create: threshold < 1";
  {
    config = { capacity; queue_cap; service_s; threshold; cooldown_s };
    peers = Hashtbl.create 8;
  }

let config t = t.config
let service_s t = t.config.service_s

let peer_state t peer =
  match Hashtbl.find_opt t.peers peer with
  | Some ps -> ps
  | None ->
    let ps =
      {
        slots = [];
        breaker =
          {
            state = Closed;
            failures = 0;
            open_until = 0.;
            level = 0;
            opens = 0;
          };
      }
    in
    Hashtbl.replace t.peers peer ps;
    ps

(* ------------------------------------------------------------------ *)
(* Admission.                                                          *)
(* ------------------------------------------------------------------ *)

type admission =
  | Admit of { start : float; finish : float; wait_s : float; depth : int }
      (* run from [start] (queue wait already included) to [finish] *)
  | Busy of { retry_after_s : float } (* queue full: shed, suggest a delay *)
  | Hopeless of { needed_s : float }
      (* the remaining budget cannot cover wait + service *)

(* Drop slots that have drained by [now], keeping the rest sorted. *)
let prune ps ~now =
  ps.slots <- List.sort compare (List.filter (fun e -> e > now) ps.slots)

let queue_depth t ~peer ~now =
  match Hashtbl.find_opt t.peers peer with
  | None -> 0
  | Some ps ->
    prune ps ~now;
    Stdlib.max 0 (List.length ps.slots - t.config.capacity)

let admit t ~peer ~now ?deadline ~units () =
  let units = Stdlib.max 1 units in
  let c = t.config in
  let ps = peer_state t peer in
  prune ps ~now;
  let busy = List.length ps.slots in
  let start =
    if busy < c.capacity then now
    else
      (* every slot is taken: we start when enough earlier admissions
         drain that the in-flight count drops below capacity — the
         (busy - capacity)-th smallest end time (slots are sorted) *)
      List.nth ps.slots (busy - c.capacity)
  in
  let wait_s = start -. now in
  let service = float_of_int units *. c.service_s in
  let finish = start +. service in
  let depth = Stdlib.max 0 (busy - c.capacity) in
  match deadline with
  | Some d when d < wait_s +. service -> Hopeless { needed_s = wait_s +. service }
  | _ ->
    if depth >= c.queue_cap && busy >= c.capacity then
      let earliest = List.nth ps.slots 0 in
      Busy { retry_after_s = Float.max c.service_s (earliest -. now) }
    else begin
      ps.slots <- List.sort compare (finish :: ps.slots);
      Admit { start; finish; wait_s; depth }
    end

(* ------------------------------------------------------------------ *)
(* Circuit breakers.                                                   *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Proceed (* breaker closed: call normally *)
  | Probe (* half-open: this call is the probe *)
  | Shed of { until : float } (* open: do not touch the wire *)

let breaker_check t ~peer ~now =
  let b = (peer_state t peer).breaker in
  match b.state with
  | Closed -> Proceed
  | Half_open -> Probe
  | Open when now < b.open_until -> Shed { until = b.open_until }
  | Open ->
    b.state <- Half_open;
    Probe

(* Deterministic doubling probe schedule: the k-th consecutive open
   lasts cooldown * 2^(k-1). *)
let open_breaker ~cooldown_s b ~now =
  b.opens <- b.opens + 1;
  b.level <- b.level + 1;
  b.state <- Open;
  b.open_until <-
    now +. (cooldown_s *. (2. ** float_of_int (b.level - 1)))

let breaker_failure t ~peer ~now =
  let c = t.config in
  let b = (peer_state t peer).breaker in
  match b.state with
  | Half_open ->
    (* the probe failed: straight back to open, cooldown doubled *)
    b.failures <- b.failures + 1;
    open_breaker ~cooldown_s:c.cooldown_s b ~now
  | Open -> b.failures <- b.failures + 1
  | Closed ->
    b.failures <- b.failures + 1;
    if b.failures >= c.threshold then
      open_breaker ~cooldown_s:c.cooldown_s b ~now

let breaker_success t ~peer =
  let b = (peer_state t peer).breaker in
  b.state <- Closed;
  b.failures <- 0;
  b.level <- 0

let breaker_opens t =
  Hashtbl.fold (fun _ ps acc -> acc + ps.breaker.opens) t.peers 0

let breaker_state t ~peer =
  match Hashtbl.find_opt t.peers peer with
  | None -> Closed
  | Some ps -> ps.breaker.state

let pp_breakers fmt t =
  let rows =
    Hashtbl.fold (fun peer ps acc -> (peer, ps.breaker) :: acc) t.peers []
    |> List.sort compare
  in
  List.iter
    (fun (peer, b) ->
      match b.state with
      | Closed ->
        Format.fprintf fmt "%s: closed (%d opens, %d consecutive failures)@."
          peer b.opens b.failures
      | Open ->
        Format.fprintf fmt "%s: open until %.3fs (%d opens)@." peer
          b.open_until b.opens
      | Half_open ->
        Format.fprintf fmt "%s: half-open (probing, %d opens)@." peer b.opens)
    rows
