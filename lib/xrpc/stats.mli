(** Per-execution cost accounting, matching the Fig. 8 breakdown:
    shred / local exec / (de)serialize / remote exec / network. Wall-clock
    components are measured; network time is simulated from real message
    bytes and the configured link. *)

type t = {
  mutable message_bytes : int;
  mutable document_bytes : int;  (** whole documents fetched (data shipping) *)
  mutable messages : int;
  mutable documents_fetched : int;
  mutable serialize_s : float;
  mutable shred_s : float;
  mutable remote_exec_s : float;
  mutable network_s : float;  (** simulated wire time *)
  mutable faults : int;  (** wire faults injected *)
  mutable timeouts : int;  (** calls that waited out the per-call timeout *)
  mutable retries : int;  (** re-sent requests *)
  mutable fallbacks : int;  (** calls degraded to local data-shipped eval *)
  mutable dedup_hits : int;  (** retried requests answered from the cache *)
  mutable dedup_evictions : int;  (** dedup-cache entries evicted by the cap *)
  mutable txn_staged : int;  (** update primitives staged at participants *)
  mutable txn_commits : int;  (** distributed transactions committed *)
  mutable txn_aborts : int;  (** distributed transactions aborted *)
}

val create : unit -> t
val reset : t -> unit
val total_bytes : t -> int
val now : unit -> float
val time_serialize : t -> (unit -> 'a) -> 'a
val time_shred : t -> (unit -> 'a) -> 'a

val time_remote : t -> (unit -> 'a) -> 'a
(** Remote-execution timing; nested (de)serialize/shred costs are
    subtracted (they are accounted in their own buckets). *)

val pp : Format.formatter -> t -> unit
