(** Per-execution cost accounting, matching the Fig. 8 breakdown:
    shred / local exec / (de)serialize / remote exec / network.
    Wall-clock components are measured; network time is simulated from
    real message bytes and the configured link.

    Since the telemetry rework this is a typed compatibility view over
    an {!Xd_obs.Metrics} registry: every bucket below is a named metric
    (see {!registry}), so the same numbers appear in [--metrics] dumps
    and can be extended by other components (journals, tracing) without
    widening this interface. *)

type t

val create : unit -> t

val registry : t -> Xd_obs.Metrics.t
(** The backing registry. Holds, besides the buckets below, per-call
    duration histograms ([hist.*]), per-fault-kind counters
    ([xrpc.faults.<kind>]) and anything other components register
    (e.g. [journal.records]). *)

val reset : t -> unit
(** Zero every metric in the backing registry (registrations survive). *)

val is_empty : t -> bool
(** No remote activity recorded: no messages, documents, wire time,
    faults or transactions. *)

(** {2 Readers} *)

val message_bytes : t -> int  (** SOAP request+response bytes *)

val document_bytes : t -> int
(** whole documents fetched (data shipping) *)

val messages : t -> int
val documents_fetched : t -> int

val calls : t -> int
(** remote execute-at calls issued (local/self executions excluded) *)

val calls_to : t -> string -> int
(** per-destination call count — the [xrpc.calls{peer=...}] counter *)

val sched_groups : t -> int
(** overlap groups the scheduler executed *)

val sched_overlapped : t -> int
(** calls that ran overlapped on the simulated clock *)

val sched_saved_s : t -> float
(** simulated wire time saved by overlap (sum - max per group) *)

val batch_envelopes : t -> int
(** batched multi-call request envelopes sent *)

val batch_calls : t -> int
(** calls that travelled inside batch envelopes *)

val serialize_s : t -> float
val shred_s : t -> float
val remote_exec_s : t -> float
val network_s : t -> float  (** simulated wire time *)

val faults : t -> int  (** wire faults injected *)

val timeouts : t -> int
(** calls that waited out the per-call timeout *)

val retries : t -> int  (** re-sent requests *)

val fallbacks : t -> int
(** calls degraded to local data-shipped eval *)

val dedup_hits : t -> int
(** retried requests answered from the cache *)

val dedup_evictions : t -> int
(** dedup-cache entries evicted by the cap *)

val txn_staged : t -> int
(** update primitives staged at participants *)

val txn_commits : t -> int  (** distributed transactions committed *)

val txn_aborts : t -> int  (** distributed transactions aborted *)

val forwarded : t -> int
(** [<forward>] redirects followed by callers *)

val topo_resolutions : t -> int
(** computed execute-at hosts resolved via the catalog *)

val topo_failovers : t -> int
(** reads re-routed to a replica because the owner was down *)

val topo_epoch_aborts : t -> int
(** 2PC prepares a participant refused on an epoch mismatch *)

val topo_churn_events : t -> int
(** scripted membership events fired *)

val down_peers : t -> string list
(** peers whose [xrpc.peer_up{peer=...}] gauge currently reads 0 (last
    exchange exhausted its retries), sorted by name *)

val remote_clamps : t -> int
(** times {!time_remote} clamped a negative remote-exec residue to 0 —
    nonzero values point at double-counted nested buckets. *)

val ov_admitted : t -> int
(** requests admitted by the bounded-capacity model *)

val ov_shed : t -> int
(** requests shed on a full admission queue ([xrpc:server.overloaded]) *)

val ov_deadline_rejects : t -> int
(** requests rejected because the remaining deadline budget could not
    cover queue wait + service time ([xrpc:deadline.exceeded]), plus
    caller-side pre-send expiries *)

val ov_queue_wait_s : t -> float
(** total queueing delay charged to the simulated clock *)

val breaker_opens : t -> int
(** circuit-breaker closed→open transitions *)

val breaker_shed : t -> int
(** calls shed locally by an open breaker (never put on the wire) *)

val breaker_probes : t -> int
(** half-open probe calls let through *)

val retry_budget_stops : t -> int
(** retries skipped because the per-query retry budget was spent *)

val codec_compiled : t -> int
(** requests emitted by a compiled (wire-shape-specialized) encoder *)

val codec_decodes : t -> int
(** responses read by a compiled atomic-response decoder *)

val codec_event_shreds : t -> int
(** fragment/copy subtrees shredded by the event fast path (no
    intermediate message-tree copy) *)

val codec_bailouts : t -> int
(** compiled-codec attempts that fell back to the generic path on a
    runtime shape mismatch *)

val total_bytes : t -> int

(** {2 Writers} *)

val add_message : t -> bytes:int -> unit
val add_document : t -> bytes:int -> unit
val add_network_s : t -> float -> unit

val set_network_s : t -> float -> unit
(** Rewind/advance the simulated clock — the scheduler bills an overlap
    group by its longest member instead of the sum. *)

val incr_call : peer:string -> t -> unit
(** Count one remote call towards [peer] (global and per-peer). *)

val add_sched_group : t -> overlapped:int -> saved_s:float -> unit
val add_batch : t -> calls:int -> unit
val incr_faults : ?kind:string -> t -> unit
val incr_timeouts : t -> unit
val incr_retries : t -> unit
val incr_fallbacks : t -> unit
val incr_dedup_hits : t -> unit
val incr_dedup_evictions : t -> unit
val add_txn_staged : t -> int -> unit
val incr_txn_commits : t -> unit
val incr_txn_aborts : t -> unit
val incr_forwarded : t -> unit
val incr_topo_resolutions : t -> unit
val incr_topo_failovers : t -> unit
val incr_topo_epoch_aborts : t -> unit
val incr_churn_events : t -> unit

val add_admitted : t -> wait_s:float -> unit
(** Count one admission, accumulating its queueing delay. *)

val incr_ov_shed : t -> unit
val incr_deadline_rejects : t -> unit
val incr_breaker_opens : t -> unit
val incr_breaker_shed : t -> unit
val incr_breaker_probes : t -> unit
val incr_retry_budget_stops : t -> unit
val incr_codec_compiled : t -> unit
val incr_codec_decodes : t -> unit
val add_codec_event_shreds : t -> int -> unit
val incr_codec_bailouts : t -> unit

val set_queue_depth : peer:string -> t -> int -> unit
(** Record the admission-queue depth a request found, in the
    [overload.queue_depth{peer=...}] gauge. *)

val set_peer_up : peer:string -> t -> bool -> unit
(** Record peer liveness in the [xrpc.peer_up{peer=...}] gauge: 1 after a
    successful exchange, 0 after a call exhausted its retry budget. *)

val set_exemplar : t -> string option -> unit
(** Install (or clear) the trace id of the run in flight. While set,
    every histogram observation carries it as an exemplar, so a tail
    outlier in a [--metrics-format prom] exposition links back to its
    trace. Untraced runs keep this [None] and the registry stays
    byte-identical. *)

(** {2 Timed scopes} *)

val now : unit -> float
val time_serialize : t -> (unit -> 'a) -> 'a
val time_shred : t -> (unit -> 'a) -> 'a

val time_remote : t -> (unit -> 'a) -> 'a
(** Remote-execution timing; nested (de)serialize/shred costs are
    subtracted (they are accounted in their own buckets). Negative
    residues are clamped to 0 and counted in {!remote_clamps}. *)

val pp : Format.formatter -> t -> unit
