(* A distributed execution session: installs the execute-at and fn:doc
   hooks into the evaluator, builds/dispatches the XRPC messages, and keeps
   the per-session endpoint state that realizes bulk-RPC-style fragment
   deduplication across the calls of one query execution.

   The whole exchange exercises real code paths: requests and responses are
   serialized to XML text, accounted on the simulated wire, and parsed back
   on the other side. Only the socket is simulated. *)

module X = Xd_xml
module Ast = Xd_lang.Ast
module Value = Xd_lang.Value
module Env = Xd_lang.Env
module Eval = Xd_lang.Eval

type recorded = { dir : [ `Request of string | `Response of string ]; text : string }

type t = {
  net : Network.t;
  self : Peer.t;
  passing : Message.passing;
  bulk : bool; (* session-wide fragment caching (bulk RPC); off = per-call *)
  schema : (string -> string list) option;
      (* schema-aware projection: mandatory child elements per element *)
  ep : Message.endpoint; (* this peer's endpoint state *)
  remote_sessions : (string, t) Hashtbl.t; (* server sessions by peer name *)
  server_funcs : (string, Ast.func list) Hashtbl.t; (* module cache per client *)
  fetched : (string, X.Doc.t) Hashtbl.t; (* data-shipped documents *)
  funcs_shipped : (string, unit) Hashtbl.t; (* hosts that got our module *)
  record : recorded list ref option;
  depth : int;
  timeout_s : float; (* simulated per-call timeout *)
  retries : int; (* extra attempts after the first *)
  replied : (string, string) Hashtbl.t;
      (* server side: request-id -> cached successful response; retried
         (or duplicated) update-carrying calls apply at most once *)
  mutable next_req : int; (* client side: request-id counter *)
}

let create ?record ?(bulk = true) ?schema ?(depth = 0) ?(timeout_s = 1.0)
    ?(retries = 2) net self passing =
  {
    net;
    self;
    passing;
    bulk;
    schema;
    ep = Message.make_endpoint self;
    remote_sessions = Hashtbl.create 4;
    server_funcs = Hashtbl.create 4;
    fetched = Hashtbl.create 8;
    funcs_shipped = Hashtbl.create 4;
    record;
    depth;
    timeout_s;
    retries;
    replied = Hashtbl.create 8;
    next_req = 0;
  }

let recorded session = Option.map (fun r -> List.rev !r) session.record

(* The server-side session object for calls from [session] to [host]:
   holds the server peer's endpoint (shredded parameters) and supports
   nested outgoing calls from that server. *)
let rec server_session session host =
  match Hashtbl.find_opt session.remote_sessions host with
  | Some s -> s
  | None ->
    if session.depth > 8 then
      Env.dynamic_error "XRPC: call nesting too deep at %s" host;
    let peer = Network.find_peer session.net host in
    let s =
      create ?record:session.record ~bulk:session.bulk ?schema:session.schema
        ~depth:(session.depth + 1) ~timeout_s:session.timeout_s
        ~retries:session.retries session.net peer session.passing
    in
    Hashtbl.replace session.remote_sessions host s;
    s

(* ---------------- data shipping (fn:doc on xrpc:// URIs) -------------- *)

and resolve_doc session env uri =
  match Xd_dgraph.Dgraph.split_xrpc_uri uri with
  | None -> Env.default_resolve_doc env uri
  | Some (host, doc_name) -> (
    if host = Peer.name session.self then
      match Peer.find_doc session.self doc_name with
      | Some d -> d
      | None -> Env.dynamic_error "document %S not found at %s" doc_name host
    else
      match Hashtbl.find_opt session.fetched uri with
      | Some d -> d
      | None ->
        let stats = session.net.Network.stats in
        let speer = Network.find_peer session.net host in
        let doc =
          match Peer.find_doc speer doc_name with
          | Some d -> d
          | None ->
            Env.dynamic_error "document %S not found at %s" doc_name host
        in
        let text =
          Stats.time_serialize stats (fun () -> X.Serializer.doc doc)
        in
        Network.transfer ~kind:`Document session.net (String.length text);
        let d =
          Stats.time_shred stats (fun () ->
              X.Parser.parse ~store:(Peer.store session.self) ~uri text)
        in
        Hashtbl.replace session.fetched uri d;
        d)

(* The endpoint used to marshal/shred one exchange: the session-wide one
   under bulk RPC (fragments cached across the calls of the session), or a
   fresh one per call when bulk is disabled (the ablation baseline — every
   call re-ships its nodes and responses arrive as fresh copies). *)
and call_endpoint session =
  if session.bulk then session.ep else Message.make_endpoint session.self

(* ---------------- request construction -------------------------------- *)

and parse_suffixes ss = List.map Xd_projection.Path.of_string ss

(* Used/returned node sets for the parameters of one call (by-projection).
   Parameters without projection information conservatively ship their full
   subtrees (by-fragment behaviour). *)
and param_node_sets (x : Ast.execute_at) args =
  let used = ref [] and returned = ref [] in
  List.iter
    (fun (v, value) ->
      let ctx =
        List.filter_map
          (function Value.N n -> Some n | Value.A _ -> None)
          value
      in
      if ctx <> [] then
        match
          List.find_opt (fun (pv, _, _) -> pv = v) x.Ast.param_paths
        with
        | Some (_, u_strs, r_strs) ->
          used := ctx @ !used;
          List.iter
            (fun p -> used := Xd_projection.Path.eval p ctx @ !used)
            (parse_suffixes u_strs);
          List.iter
            (fun p -> returned := Xd_projection.Path.eval p ctx @ !returned)
            (parse_suffixes r_strs)
        | None -> returned := ctx @ !returned)
    args;
  (!used, !returned)

and build_request session ~ep ~host ?req_id (x : Ast.execute_at) ~args ~funcs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"><env:Body><request";
  Message.buf_attr buf "passing" (Message.passing_to_string session.passing);
  Message.buf_attr buf "caller" (Peer.name session.self);
  (* only stamped on a faulty wire, so fault-free traffic is byte-identical
     to a build without the fault layer *)
  (match req_id with
  | Some id -> Message.buf_attr buf "request-id" id
  | None -> ());
  Message.buf_attr buf "static-base-uri" "xdx://static/";
  Message.buf_attr buf "default-collation" "codepoint";
  Message.buf_attr buf "current-dateTime" "2009-03-29T00:00:00Z";
  Buffer.add_char buf '>';
  (* ship the module (user function definitions) once per host *)
  if funcs <> [] && not (Hashtbl.mem session.funcs_shipped host) then begin
    Hashtbl.replace session.funcs_shipped host ();
    Buffer.add_string buf "<module>";
    let text =
      String.concat "\n" (List.map (Format.asprintf "%a" Xd_lang.Pp.pp_func) funcs)
    in
    Message.buf_text buf text;
    Buffer.add_string buf "</module>"
  end;
  Buffer.add_string buf "<query>";
  Message.buf_text buf (Xd_lang.Pp.expr_to_string x.Ast.body);
  Buffer.add_string buf "</query>";
  (* Per the paper, the absence of <projection-paths> tells the callee to
     answer in the full (by-fragment-style) format; only emit it when the
     analysis actually produced result paths. *)
  (if
     session.passing = Message.By_projection
     && x.Ast.result_paths <> ([], [])
   then begin
     let u, r = x.Ast.result_paths in
     Buffer.add_string buf "<projection-paths>";
     List.iter
       (fun p ->
         Buffer.add_string buf "<used-path>";
         Message.buf_text buf p;
         Buffer.add_string buf "</used-path>")
       u;
     List.iter
       (fun p ->
         Buffer.add_string buf "<returned-path>";
         Message.buf_text buf p;
         Buffer.add_string buf "</returned-path>")
       r;
     Buffer.add_string buf "</projection-paths>"
   end);
  let values = List.map snd args in
  let frags =
    match session.passing with
    | Message.By_value -> []
    | Message.By_fragment ->
      Message.plan_by_fragment ep ~host (Message.value_nodes values)
    | Message.By_projection ->
      let used, returned = param_node_sets x args in
      Message.plan_by_projection ?schema:session.schema ep ~host ~used
        ~returned
  in
  Message.write_fragments buf frags;
  Buffer.add_string buf "<call>";
  List.iter
    (fun (v, value) ->
      Message.write_sequence ep ~host ~passing:session.passing ~frags buf
        ~param:v value)
    args;
  Buffer.add_string buf "</call>";
  Buffer.add_string buf "</request></env:Body></env:Envelope>";
  Buffer.contents buf

(* ---------------- server side ----------------------------------------- *)

and find_path names node =
  List.fold_left
    (fun acc name ->
      match acc with
      | None -> None
      | Some n -> Message.find_child n name)
    (Some node) names

(* [session] here is the *server* session. Every failure below — a
   request that does not parse, ill-formed protocol content, or an error
   raised by the remote body — is answered with a proper <env:Fault>
   envelope carrying a code from the taxonomy, never a leaked native
   exception. Only asynchronous/implementation exceptions (Stack_overflow
   and friends) still propagate. *)
and handle_request session ~client_name request_text =
  let stats = session.net.Network.stats in
  try handle_request_exn session ~client_name request_text
  with e ->
    let fault code reason =
      stats.Stats.faults <- stats.Stats.faults + 1;
      Stats.time_serialize stats (fun () -> Message.write_fault ~code ~reason)
    in
    (match e with
    | Message.Protocol_error m -> fault Message.Protocol_malformed m
    | X.Parser.Error (m, pos) ->
      fault Message.Transport_corrupt
        (Printf.sprintf "unparsable request: %s (byte %d)" m pos)
    | Xd_lang.Parser.Error (m, pos) | Xd_lang.Lexer.Error (m, pos) ->
      fault Message.Protocol_malformed
        (Printf.sprintf "unparsable query body: %s (offset %d)" m pos)
    | Env.Dynamic_error m -> fault Message.App_dynamic m
    | Value.Type_error m -> fault Message.App_type m
    | Message.Xrpc_fault { host; code; reason } ->
      (* a nested call of the body failed: relay the upstream fault *)
      fault code (Printf.sprintf "relayed from %s: %s" host reason)
    | Message.Xrpc_timeout { host; attempts } ->
      fault Message.Transport_timeout
        (Printf.sprintf "upstream peer %s did not answer (%d attempts)" host
           attempts)
    | Failure m -> fault Message.Protocol_malformed m
    | e -> raise e)

and handle_request_exn session ~client_name request_text =
  let stats = session.net.Network.stats in
  let ep = call_endpoint session in
  let req =
    Stats.time_shred stats (fun () ->
        let mdoc = X.Parser.parse_doc ~strip_ws:false request_text in
        let root = X.Node.doc_node mdoc in
        match find_path [ "env:Envelope"; "env:Body"; "request" ] root with
        | Some r -> r
        | None ->
          Message.protocol_error
            "XRPC message without <env:Envelope>/<env:Body>/<request>")
  in
  let req_id = Message.attr_of req "request-id" in
  match Option.bind req_id (Hashtbl.find_opt session.replied) with
  | Some cached ->
    (* a retransmission of a request we already answered: replay the
       response instead of re-evaluating (at-most-once updates) *)
    stats.Stats.dedup_hits <- stats.Stats.dedup_hits + 1;
    cached
  | None ->
    let resp = handle_parsed session ~client_name ~ep req in
    (match req_id with
    | Some id -> Hashtbl.replace session.replied id resp
    | None -> ());
    resp

and handle_parsed session ~client_name ~ep req =
  let stats = session.net.Network.stats in
  let passing = Message.passing_of_string (Message.req_attr req "passing") in
  Stats.time_shred stats (fun () ->
      Message.shred_fragments ep ~from_host:client_name
        (Message.find_child req "fragments"));
  (* module: parse and cache the caller's function definitions *)
  (match Message.find_child req "module" with
  | Some m ->
    let text = X.Node.string_value m in
    let q = Xd_lang.Parser.parse_query (text ^ "\n()") in
    Hashtbl.replace session.server_funcs client_name q.Ast.funcs
  | None -> ());
  let funcs =
    Option.value ~default:[] (Hashtbl.find_opt session.server_funcs client_name)
  in
  let body_text =
    match Message.find_child req "query" with
    | Some qn -> X.Node.string_value qn
    | None -> Message.protocol_error "XRPC request without <query>"
  in
  let args =
    match Message.find_child req "call" with
    | None -> Message.protocol_error "XRPC request without <call>"
    | Some call ->
      List.map
        (fun seq ->
          ( Message.req_attr seq "param",
            Message.shred_sequence ep ~from_host:client_name seq ))
        (Message.children_named call "sequence")
  in
  let result =
    Stats.time_remote stats (fun () ->
        let body = Xd_lang.Parser.parse_expr_string body_text in
        let vars =
          List.fold_left
            (fun acc (v, value) -> Env.Smap.add v value acc)
            Env.Smap.empty args
        in
        let env =
          Env.create ~vars ~funcs
            ~resolve_doc:(fun env uri -> resolve_doc session env uri)
            ~execute_at:(fun env x ~host ~args ->
              execute_at session env x ~host ~args)
            ~builtins:(Xd_lang.Builtins.table ())
            ~static_base_uri:(Message.req_attr req "static-base-uri")
            ~default_collation:(Message.req_attr req "default-collation")
            ~current_datetime:(Message.req_attr req "current-dateTime")
            ~pul:(Xd_lang.Pul.create ())
            (Peer.store session.self)
        in
        let v = Eval.eval env body in
        apply_updates session env;
        v)
  in
  (* response *)
  Stats.time_serialize stats (fun () ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"><env:Body><response";
      Message.buf_attr buf "passing" (Message.passing_to_string passing);
      Buffer.add_char buf '>';
      let result_nodes =
        List.filter_map
          (function Value.N n -> Some n | Value.A _ -> None)
          result
      in
      let frags =
        match passing with
        | Message.By_value -> []
        | Message.By_fragment ->
          Message.plan_by_fragment ep ~host:client_name result_nodes
        | Message.By_projection ->
          let proj = Message.find_child req "projection-paths" in
          let u_paths, r_paths =
            match proj with
            | None -> ([], None)
            | Some p ->
              ( List.map
                  (fun n -> Xd_projection.Path.of_string (X.Node.string_value n))
                  (Message.children_named p "used-path"),
                Some
                  (List.map
                     (fun n ->
                       Xd_projection.Path.of_string (X.Node.string_value n))
                     (Message.children_named p "returned-path")) )
          in
          let used, returned =
            match r_paths with
            | None -> ([], result_nodes) (* no paths: ship full subtrees *)
            | Some rp ->
              let u =
                result_nodes
                @ List.concat_map
                    (fun p -> Xd_projection.Path.eval p result_nodes)
                    u_paths
              in
              let r =
                List.concat_map
                  (fun p -> Xd_projection.Path.eval p result_nodes)
                  rp
              in
              (u, r)
          in
          Message.plan_by_projection ?schema:session.schema ep
            ~host:client_name ~used ~returned
      in
      Message.write_fragments buf frags;
      Message.write_sequence ep ~host:client_name ~passing ~frags buf result;
      Buffer.add_string buf "</response></env:Body></env:Envelope>";
      Buffer.contents buf)

(* ---------------- client side ------------------------------------------ *)

(* Shred a response at the client. A response that does not parse (e.g.
   truncated in flight) or is structurally broken raises a *retryable*
   transport fault; a parsed <env:Fault> re-raises as the typed
   exception it describes. *)
and shred_response session ~ep ~host response_text : Value.t =
  let stats = session.net.Network.stats in
  let corrupt reason =
    raise
      (Message.Xrpc_fault { host; code = Message.Transport_corrupt; reason })
  in
  Stats.time_shred stats (fun () ->
      let root =
        match X.Parser.parse_doc ~strip_ws:false response_text with
        | mdoc -> X.Node.doc_node mdoc
        | exception X.Parser.Error (m, pos) ->
          corrupt (Printf.sprintf "unparsable response: %s (byte %d)" m pos)
      in
      match find_path [ "env:Envelope"; "env:Body"; "response" ] root with
      | Some resp -> (
        Message.shred_fragments ep ~from_host:host
          (Message.find_child resp "fragments");
        match Message.find_child resp "sequence" with
        | Some seq -> Message.shred_sequence ep ~from_host:host seq
        | None -> [])
      | None -> (
        match find_path [ "env:Envelope"; "env:Body"; "env:Fault" ] root with
        | Some f ->
          let code, reason = Message.parse_fault f in
          raise (Message.Xrpc_fault { host; code; reason })
        | None -> corrupt "response is neither <response> nor <env:Fault>"))

(* A body is safe to degrade to local evaluation when it provably reads
   only: no updating expression and no user-function call (a user
   function could hide an update; builtins cannot). *)
and degradable (x : Ast.execute_at) =
  (not (Ast.contains_update x.Ast.body))
  && Ast.fold
       (fun acc e ->
         acc
         &&
         match e.Ast.desc with
         | Ast.Fun_call (f, _) -> Xd_lang.Builtin_names.is_builtin f
         | _ -> true)
       true x.Ast.body

(* Graceful degradation: the peer's query endpoint is unreachable, but
   its document store is served by a dumb replica that data shipping can
   still reach (DESIGN.md). Fetch the documents and evaluate the
   read-only body here; relative URIs in the body meant the peer's own
   store, so they resolve as xrpc://host/uri. *)
and degrade session env (x : Ast.execute_at) ~host ~args =
  let stats = session.net.Network.stats in
  stats.Stats.fallbacks <- stats.Stats.fallbacks + 1;
  let resolve e uri =
    match Xd_dgraph.Dgraph.split_xrpc_uri uri with
    | Some _ -> resolve_doc session e uri
    | None -> resolve_doc session e ("xrpc://" ^ host ^ "/" ^ uri)
  in
  Eval.local_execute_at { env with Env.resolve_doc = resolve } x ~host ~args

and execute_at session env (x : Ast.execute_at) ~host ~args =
  if host = "" || host = Peer.name session.self then
    (* local execution: plain evaluation, full fidelity *)
    Eval.local_execute_at env x ~host ~args
  else begin
    let stats = session.net.Network.stats in
    let funcs = Env.func_list env in
    let ep = call_endpoint session in
    let req_id =
      (* only on a faulty wire: fault-free traffic stays byte-identical *)
      if Network.faulty session.net then begin
        session.next_req <- session.next_req + 1;
        Some (Printf.sprintf "%s:%d" (Peer.name session.self) session.next_req)
      end
      else None
    in
    let req_text =
      Stats.time_serialize stats (fun () ->
          build_request session ~ep ~host ?req_id x ~args ~funcs)
    in
    (match session.record with
    | Some r -> r := { dir = `Request req_text; text = req_text } :: !r
    | None -> ());
    let srv = server_session session host in
    let self_name = Peer.name session.self in
    let attempts = session.retries + 1 in
    let timed_out () =
      stats.Stats.timeouts <- stats.Stats.timeouts + 1;
      stats.Stats.network_s <- stats.Stats.network_s +. session.timeout_s
    in
    let rec attempt n last =
      if n > attempts then
        (* out of attempts on retryable failures only — non-retryable
           faults raise immediately below *)
        if degradable x then degrade session env x ~host ~args
        else
          match last with
          | `Fault (code, reason) ->
            raise (Message.Xrpc_fault { host; code; reason })
          | `Timeout -> raise (Message.Xrpc_timeout { host; attempts })
      else begin
        if n > 1 then begin
          stats.Stats.retries <- stats.Stats.retries + 1;
          (* deterministic exponential backoff, charged to the wire clock *)
          stats.Stats.network_s <-
            stats.Stats.network_s +. (0.05 *. (2. ** float_of_int (n - 2)))
        end;
        match Network.send session.net ~dst:host req_text with
        | Network.Dropped ->
          timed_out ();
          attempt (n + 1) `Timeout
        | Network.Delivered { text = delivered; duplicated } -> (
          let resp_text = handle_request srv ~client_name:self_name delivered in
          (* a duplicated request reaches the server twice; the second
             copy is answered from the dedup cache and its reply ignored *)
          if duplicated then
            ignore (handle_request srv ~client_name:self_name delivered);
          (match session.record with
          | Some r -> r := { dir = `Response resp_text; text = resp_text } :: !r
          | None -> ());
          match Network.send session.net ~dst:self_name resp_text with
          | Network.Dropped ->
            timed_out ();
            attempt (n + 1) `Timeout
          | Network.Delivered { text = resp_delivered; duplicated = _ } -> (
            match shred_response session ~ep ~host resp_delivered with
            | v -> v
            | exception Message.Xrpc_fault { host = _; code; reason }
              when Message.retryable code ->
              attempt (n + 1) (`Fault (code, reason))))
      end
    in
    attempt 1 `Timeout
  end

(* Apply a pending update list, refusing updates whose targets live in
   documents this peer obtained by shipping (data-shipped fetches or
   shredded message fragments): updating a copy would silently diverge
   from the source peer. This is the runtime half of the paper's
   Section IX restriction. *)
and apply_updates session (env : Env.t) =
  match env.Env.pul with
  | None -> ()
  | Some pul when Xd_lang.Pul.is_empty pul -> ()
  | Some pul ->
    let pending = Xd_lang.Pul.list pul in
    let fetched_dids =
      Hashtbl.fold (fun _ d acc -> d.X.Doc.did :: acc) session.fetched []
    in
    List.iter
      (fun p ->
        let d = (Xd_lang.Pul.target_of p).X.Node.doc in
        if
          List.mem d.X.Doc.did fetched_dids
          || Hashtbl.mem session.ep.Message.foreign_docs d.X.Doc.did
        then
          Env.dynamic_error
            "update at %s targets a shipped copy of a remote document; \
re-run under a function-shipping strategy so the update executes at its \
source peer"
            (Peer.name session.self))
      pending;
    ignore (Xd_lang.Update.apply (Peer.store session.self) pending)

(* ---------------- public API ------------------------------------------- *)

let env_for session ~funcs =
  Env.create ~funcs
    ~resolve_doc:(fun env uri -> resolve_doc session env uri)
    ~execute_at:(fun env x ~host ~args -> execute_at session env x ~host ~args)
    ~builtins:(Xd_lang.Builtins.table ())
    ~pul:(Xd_lang.Pul.create ())
    (Peer.store session.self)

let execute session (q : Ast.query) =
  let env = env_for session ~funcs:q.Ast.funcs in
  let v = Eval.eval env q.Ast.body in
  apply_updates session env;
  v
