(* A distributed execution session: installs the execute-at and fn:doc
   hooks into the evaluator, builds/dispatches the XRPC messages, and keeps
   the per-session endpoint state that realizes bulk-RPC-style fragment
   deduplication across the calls of one query execution.

   The whole exchange exercises real code paths: requests and responses are
   serialized to XML text, accounted on the simulated wire, and parsed back
   on the other side. Only the socket is simulated. *)

module X = Xd_xml
module Ast = Xd_lang.Ast
module Value = Xd_lang.Value
module Env = Xd_lang.Env
module Eval = Xd_lang.Eval
module Trace = Xd_obs.Trace

type recorded = { dir : [ `Request of string | `Response of string ]; text : string }

(* Coordinator state of one distributed transaction: the id travels on
   every update-carrying request of the query, and the participants are
   collected from response acknowledgements (transitively — a server that
   fanned out reports its own participants back). *)
type coord = { txn_id : string; mutable participants : string list }

type t = {
  net : Network.t;
  self : Peer.t;
  passing : Message.passing;
  bulk : bool; (* session-wide fragment caching (bulk RPC); off = per-call *)
  schema : (string -> string list) option;
      (* schema-aware projection: mandatory child elements per element *)
  ep : Message.endpoint; (* this peer's endpoint state *)
  remote_sessions : (string, t) Hashtbl.t; (* server sessions by peer name *)
  server_funcs : (string, Ast.func list) Hashtbl.t; (* module cache per client *)
  fetched : (string, X.Doc.t) Hashtbl.t; (* data-shipped documents *)
  funcs_shipped : (string, unit) Hashtbl.t; (* hosts that got our module *)
  record : recorded list ref option;
  depth : int;
  timeout_s : float; (* simulated per-call timeout *)
  retries : int; (* extra attempts after the first *)
  replied : (string, string) Hashtbl.t;
      (* server side: request-id -> cached successful response; retried
         (or duplicated) update-carrying calls apply at most once *)
  replied_order : string Queue.t; (* FIFO eviction order for the cache *)
  dedup_cap : int; (* size cap on the dedup cache *)
  mutable next_req : int; (* client side: request-id counter *)
  mutable txn : coord option;
      (* the transaction in scope: set on the coordinator for the whole
         execution, and on a server session while it evaluates a
         txn-tagged request (so nested calls propagate the id) *)
  mutable next_txn : int; (* coordinator: transaction-id counter *)
  tracer : Trace.t option; (* shared across every session of one run *)
  mutable cur : Trace.span option;
      (* the ambient span new spans parent under: the executor's root on
         the coordinator, the active attempt/evaluate span elsewhere *)
}

let create ?record ?(bulk = true) ?schema ?(depth = 0) ?(timeout_s = 1.0)
    ?(retries = 2) ?(dedup_cap = 256) ?tracer net self passing =
  {
    net;
    self;
    passing;
    bulk;
    schema;
    ep = Message.make_endpoint self;
    remote_sessions = Hashtbl.create 4;
    server_funcs = Hashtbl.create 4;
    fetched = Hashtbl.create 8;
    funcs_shipped = Hashtbl.create 4;
    record;
    depth;
    timeout_s;
    retries;
    replied = Hashtbl.create 8;
    replied_order = Queue.create ();
    dedup_cap = max 1 dedup_cap;
    next_req = 0;
    txn = None;
    next_txn = 0;
    tracer;
    cur = None;
  }

let set_current_span session sp = session.cur <- sp

(* ---------------- tracing helpers -------------------------------------- *)

(* Run [f] with [sp] as the session's ambient span. *)
let with_cur session sp f =
  let prev = session.cur in
  session.cur <- sp;
  Fun.protect ~finally:(fun () -> session.cur <- prev) (fun () -> f ())

(* A span under the current ambient one, ambient for the duration of
   [f]. All no-ops when the session has no tracer. *)
let traced ?peer session ~cat name f =
  let peer = Option.value ~default:(Peer.name session.self) peer in
  Trace.with_span session.tracer
    ~parent:(Trace.ambient session.cur)
    ~peer ~cat name
    (fun sp -> with_cur session sp (fun () -> f sp))

(* An event marker: the caller attaches attributes and finishes it. *)
let span_note session ~cat name =
  Trace.start session.tracer
    ~parent:(Trace.ambient session.cur)
    ~peer:(Peer.name session.self) ~cat name

let recorded session = Option.map (fun r -> List.rev !r) session.record

(* This peer's transaction journal — owned by the network so that every
   session serving the peer (and any later recovery session) shares it. *)
let journal session = Network.journal session.net (Peer.name session.self)

(* Cache a successful response under its request id, evicting the oldest
   entry once the cap is reached: the cache must not grow without bound
   over a long session (satellite of PR 3). An evicted id makes a very
   late retransmission re-evaluate — for updates that risk is closed by
   transactional staging, which dedups on (txn, request-id) in the
   journal instead. *)
let remember_reply session id resp =
  if not (Hashtbl.mem session.replied id) then begin
    Hashtbl.replace session.replied id resp;
    Queue.push id session.replied_order;
    if Queue.length session.replied_order > session.dedup_cap then begin
      let victim = Queue.pop session.replied_order in
      Hashtbl.remove session.replied victim;
      Stats.incr_dedup_evictions session.net.Network.stats
    end
  end

(* The server-side session object for calls from [session] to [host]:
   holds the server peer's endpoint (shredded parameters) and supports
   nested outgoing calls from that server. *)
let rec server_session session host =
  match Hashtbl.find_opt session.remote_sessions host with
  | Some s -> s
  | None ->
    if session.depth > 8 then
      Env.dynamic_error "XRPC: call nesting too deep at %s" host;
    let peer = Network.find_peer session.net host in
    let s =
      create ?record:session.record ~bulk:session.bulk ?schema:session.schema
        ~depth:(session.depth + 1) ~timeout_s:session.timeout_s
        ~retries:session.retries ~dedup_cap:session.dedup_cap
        ?tracer:session.tracer session.net peer session.passing
    in
    Hashtbl.replace session.remote_sessions host s;
    s

(* ---------------- data shipping (fn:doc on xrpc:// URIs) -------------- *)

and resolve_doc session env uri =
  match Xd_dgraph.Dgraph.split_xrpc_uri uri with
  | None -> Env.default_resolve_doc env uri
  | Some (host, doc_name) -> (
    if host = Peer.name session.self then
      match Peer.find_doc session.self doc_name with
      | Some d -> d
      | None -> Env.dynamic_error "document %S not found at %s" doc_name host
    else
      match Hashtbl.find_opt session.fetched uri with
      | Some d -> d
      | None ->
        traced session ~cat:"doc" ("fetch " ^ uri) @@ fun dsp ->
        Trace.add_attr dsp "uri" (Trace.S uri);
        let stats = session.net.Network.stats in
        let speer = Network.find_peer session.net host in
        let doc =
          match Peer.find_doc speer doc_name with
          | Some d -> d
          | None ->
            Env.dynamic_error "document %S not found at %s" doc_name host
        in
        let text =
          traced ~peer:host session ~cat:"serialize" "document" @@ fun _ ->
          Stats.time_serialize stats (fun () -> X.Serializer.doc doc)
        in
        (traced session ~cat:"network" ("ship " ^ doc_name) @@ fun _ ->
         Network.transfer ~kind:`Document session.net (String.length text));
        let d =
          traced session ~cat:"shred" "document" @@ fun _ ->
          Stats.time_shred stats (fun () ->
              X.Parser.parse ~store:(Peer.store session.self) ~uri text)
        in
        Hashtbl.replace session.fetched uri d;
        d)

(* The endpoint used to marshal/shred one exchange: the session-wide one
   under bulk RPC (fragments cached across the calls of the session), or a
   fresh one per call when bulk is disabled (the ablation baseline — every
   call re-ships its nodes and responses arrive as fresh copies). *)
and call_endpoint session =
  if session.bulk then session.ep else Message.make_endpoint session.self

(* ---------------- request construction -------------------------------- *)

and parse_suffixes ss = List.map Xd_projection.Path.of_string ss

(* Used/returned node sets for the parameters of one call (by-projection).
   Parameters without projection information conservatively ship their full
   subtrees (by-fragment behaviour). *)
and param_node_sets (x : Ast.execute_at) args =
  let used = ref [] and returned = ref [] in
  List.iter
    (fun (v, value) ->
      let ctx =
        List.filter_map
          (function Value.N n -> Some n | Value.A _ -> None)
          value
      in
      if ctx <> [] then
        match
          List.find_opt (fun (pv, _, _) -> pv = v) x.Ast.param_paths
        with
        | Some (_, u_strs, r_strs) ->
          used := ctx @ !used;
          List.iter
            (fun p -> used := Xd_projection.Path.eval p ctx @ !used)
            (parse_suffixes u_strs);
          List.iter
            (fun p -> returned := Xd_projection.Path.eval p ctx @ !returned)
            (parse_suffixes r_strs)
        | None -> returned := ctx @ !returned)
    args;
  (!used, !returned)

and build_request session ~ep ~host ?req_id ?txn (x : Ast.execute_at) ~args
    ~funcs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"><env:Body><request";
  Message.buf_attr buf "passing" (Message.passing_to_string session.passing);
  Message.buf_attr buf "caller" (Peer.name session.self);
  (* only stamped on a faulty wire, so fault-free traffic is byte-identical
     to a build without the fault layer *)
  (match req_id with
  | Some id -> Message.buf_attr buf "request-id" id
  | None -> ());
  (* only stamped inside a distributed transaction: the callee stages its
     PUL under this id instead of applying it *)
  (match txn with
  | Some t -> Message.buf_attr buf "txn" t
  | None -> ());
  Message.buf_attr buf "static-base-uri" "xdx://static/";
  Message.buf_attr buf "default-collation" "codepoint";
  Message.buf_attr buf "current-dateTime" "2009-03-29T00:00:00Z";
  Buffer.add_char buf '>';
  (* ship the module (user function definitions) once per host *)
  if funcs <> [] && not (Hashtbl.mem session.funcs_shipped host) then begin
    Hashtbl.replace session.funcs_shipped host ();
    Buffer.add_string buf "<module>";
    let text =
      String.concat "\n" (List.map (Format.asprintf "%a" Xd_lang.Pp.pp_func) funcs)
    in
    Message.buf_text buf text;
    Buffer.add_string buf "</module>"
  end;
  Buffer.add_string buf "<query>";
  Message.buf_text buf (Xd_lang.Pp.expr_to_string x.Ast.body);
  Buffer.add_string buf "</query>";
  (* Per the paper, the absence of <projection-paths> tells the callee to
     answer in the full (by-fragment-style) format; only emit it when the
     analysis actually produced result paths. *)
  (if
     session.passing = Message.By_projection
     && x.Ast.result_paths <> ([], [])
   then begin
     let u, r = x.Ast.result_paths in
     Buffer.add_string buf "<projection-paths>";
     List.iter
       (fun p ->
         Buffer.add_string buf "<used-path>";
         Message.buf_text buf p;
         Buffer.add_string buf "</used-path>")
       u;
     List.iter
       (fun p ->
         Buffer.add_string buf "<returned-path>";
         Message.buf_text buf p;
         Buffer.add_string buf "</returned-path>")
       r;
     Buffer.add_string buf "</projection-paths>"
   end);
  let values = List.map snd args in
  let frags =
    match session.passing with
    | Message.By_value -> []
    | Message.By_fragment ->
      Message.plan_by_fragment ep ~host (Message.value_nodes values)
    | Message.By_projection ->
      let used, returned = param_node_sets x args in
      Message.plan_by_projection ?schema:session.schema ep ~host ~used
        ~returned
  in
  Message.write_fragments buf frags;
  Buffer.add_string buf "<call>";
  List.iter
    (fun (v, value) ->
      Message.write_sequence ep ~host ~passing:session.passing ~frags buf
        ~param:v value)
    args;
  Buffer.add_string buf "</call>";
  Buffer.add_string buf "</request></env:Body></env:Envelope>";
  Buffer.contents buf

(* ---------------- server side ----------------------------------------- *)

and find_path names node =
  List.fold_left
    (fun acc name ->
      match acc with
      | None -> None
      | Some n -> Message.find_child n name)
    (Some node) names

(* [session] here is the *server* session. Every failure below — a
   request that does not parse, ill-formed protocol content, or an error
   raised by the remote body — is answered with a proper <env:Fault>
   envelope carrying a code from the taxonomy, never a leaked native
   exception. Only asynchronous/implementation exceptions (Stack_overflow
   and friends) still propagate. *)
and handle_request session ~client_name request_text =
  (* A decodable <trace> header links this peer's spans under the
     caller's attempt span; without one (tracing off, or the header was
     lost to truncation / malformed) the call runs untraced. *)
  match (session.tracer, Message.peek_trace_header request_text) with
  | Some _, Some (trace_id, span_id) ->
    Trace.with_span session.tracer
      ~parent:(Trace.Remote { trace_id; span_id })
      ~peer:(Peer.name session.self) ~cat:"server" "handle"
      (fun sp ->
        with_cur session sp (fun () ->
            handle_request_guarded session ~client_name request_text))
  | _ -> handle_request_guarded session ~client_name request_text

and handle_request_guarded session ~client_name request_text =
  let stats = session.net.Network.stats in
  try handle_request_exn session ~client_name request_text
  with e ->
    let fault code reason =
      Stats.incr_faults ~kind:"app" stats;
      Trace.add_attr session.cur "fault"
        (Trace.S (Message.fault_code_to_string code));
      traced session ~cat:"serialize" "fault" @@ fun _ ->
      Stats.time_serialize stats (fun () -> Message.write_fault ~code ~reason)
    in
    (match e with
    | Message.Protocol_error m -> fault Message.Protocol_malformed m
    | X.Parser.Error (m, pos) ->
      fault Message.Transport_corrupt
        (Printf.sprintf "unparsable request: %s (byte %d)" m pos)
    | Xd_lang.Parser.Error (m, pos) | Xd_lang.Lexer.Error (m, pos) ->
      fault Message.Protocol_malformed
        (Printf.sprintf "unparsable query body: %s (offset %d)" m pos)
    | Env.Dynamic_error m -> fault Message.App_dynamic m
    | Value.Type_error m -> fault Message.App_type m
    | Message.Xrpc_fault { host; code; reason } ->
      (* a nested call of the body failed: relay the upstream fault *)
      fault code (Printf.sprintf "relayed from %s: %s" host reason)
    | Message.Xrpc_timeout { host; attempts } ->
      fault Message.Transport_timeout
        (Printf.sprintf "upstream peer %s did not answer (%d attempts)" host
           attempts)
    | Failure m -> fault Message.Protocol_malformed m
    | e -> raise e)

and handle_request_exn session ~client_name request_text =
  let stats = session.net.Network.stats in
  let body =
    traced session ~cat:"shred" "request" @@ fun _ ->
    Stats.time_shred stats (fun () ->
        let mdoc = X.Parser.parse_doc ~strip_ws:false request_text in
        let root = X.Node.doc_node mdoc in
        match find_path [ "env:Envelope"; "env:Body" ] root with
        | Some b -> b
        | None ->
          Message.protocol_error
            "XRPC message without <env:Envelope>/<env:Body>")
  in
  match
    List.find_map
      (fun (name, action) ->
        Option.map (fun n -> (action, n)) (Message.find_child body name))
      [
        ("prepare", Message.Prepare);
        ("commit", Message.Commit);
        ("abort", Message.Abort);
      ]
  with
  | Some (action, n) ->
    handle_txn_control session action (Message.req_attr n "txn")
  | None -> (
    let req =
      match Message.find_child body "request" with
      | Some r -> r
      | None ->
        Message.protocol_error
          "XRPC message without <env:Envelope>/<env:Body>/<request>"
    in
    let ep = call_endpoint session in
    let req_id = Message.attr_of req "request-id" in
    match Option.bind req_id (Hashtbl.find_opt session.replied) with
    | Some cached ->
      (* a retransmission of a request we already answered: replay the
         response instead of re-evaluating (at-most-once updates) *)
      Stats.incr_dedup_hits stats;
      Trace.add_attr session.cur "dedup" (Trace.B true);
      cached
    | None ->
      let resp = handle_parsed session ~client_name ~ep ?req_id req in
      (match req_id with
      | Some id -> remember_reply session id resp
      | None -> ());
      resp)

(* Participant side of 2PC. All three actions are idempotent, so control
   messages need no dedup: a duplicated or retried prepare/commit/abort
   re-acks the same way. Unknown transactions vote no / ack aborted —
   presumed abort. *)
and handle_txn_control session action txn =
  let stats = session.net.Network.stats in
  let j = journal session in
  traced session ~cat:"txn" (Message.txn_action_to_string action) @@ fun tsp ->
  Trace.add_attr tsp "txn" (Trace.S txn);
  let ack a =
    Trace.add_attr tsp "ack" (Trace.S (Message.txn_ack_to_string a));
    traced session ~cat:"serialize" "ack" @@ fun _ ->
    Stats.time_serialize stats (fun () -> Message.write_txn_ack ~txn ~ack:a)
  in
  match action with
  | Message.Prepare ->
    if Journal.prepare j ~txn then ack Message.Ack_prepared
    else ack Message.Ack_aborted
  | Message.Abort ->
    Journal.abort j ~txn;
    ack Message.Ack_aborted
  | Message.Commit -> (
    match Journal.commit j ~txn with
    | `Already -> ack Message.Ack_committed
    | `Unknown ->
      Message.protocol_error
        "commit for unknown or aborted transaction %s" txn
    | `Apply puls ->
      (traced session ~cat:"remote" "apply staged" @@ fun _ ->
       Stats.time_remote stats (fun () ->
           ignore
             (Xd_lang.Update.apply_staged (Peer.store session.self) puls)));
      Journal.committed j ~txn;
      ack Message.Ack_committed)

and handle_parsed session ~client_name ~ep ?req_id req =
  let stats = session.net.Network.stats in
  let passing = Message.passing_of_string (Message.req_attr req "passing") in
  let txn_attr = Message.attr_of req "txn" in
  (traced session ~cat:"shred" "fragments" @@ fun _ ->
   Stats.time_shred stats (fun () ->
       Message.shred_fragments ep ~from_host:client_name
         (Message.find_child req "fragments")));
  (* module: parse and cache the caller's function definitions *)
  (match Message.find_child req "module" with
  | Some m ->
    let text = X.Node.string_value m in
    let q = Xd_lang.Parser.parse_query (text ^ "\n()") in
    Hashtbl.replace session.server_funcs client_name q.Ast.funcs
  | None -> ());
  let funcs =
    Option.value ~default:[] (Hashtbl.find_opt session.server_funcs client_name)
  in
  let body_text =
    match Message.find_child req "query" with
    | Some qn -> X.Node.string_value qn
    | None -> Message.protocol_error "XRPC request without <query>"
  in
  let args =
    match Message.find_child req "call" with
    | None -> Message.protocol_error "XRPC request without <call>"
    | Some call ->
      List.map
        (fun seq ->
          ( Message.req_attr seq "param",
            Message.shred_sequence ep ~from_host:client_name seq ))
        (Message.children_named call "sequence")
  in
  (* while a txn-tagged request evaluates, the transaction is in scope so
     nested outgoing calls propagate the id; its participants (this peer's
     own fan-out) are reported back in the response *)
  let tcoord =
    Option.map (fun t -> { txn_id = t; participants = [] }) txn_attr
  in
  let staged = ref 0 in
  let result =
    traced session ~cat:"remote" "evaluate" @@ fun _ ->
    Stats.time_remote stats (fun () ->
        let body = Xd_lang.Parser.parse_expr_string body_text in
        let vars =
          List.fold_left
            (fun acc (v, value) -> Env.Smap.add v value acc)
            Env.Smap.empty args
        in
        let env =
          Env.create ~vars ~funcs
            ~resolve_doc:(fun env uri -> resolve_doc session env uri)
            ~execute_at:(fun env x ~host ~args ->
              execute_at session env x ~host ~args)
            ~builtins:(Xd_lang.Builtins.table ())
            ~static_base_uri:(Message.req_attr req "static-base-uri")
            ~default_collation:(Message.req_attr req "default-collation")
            ~current_datetime:(Message.req_attr req "current-dateTime")
            ~pul:(Xd_lang.Pul.create ())
            (Peer.store session.self)
        in
        let prev_txn = session.txn in
        Fun.protect
          ~finally:(fun () -> session.txn <- prev_txn)
          (fun () ->
            (match tcoord with
            | Some _ -> session.txn <- tcoord
            | None -> ());
            let v = Eval.eval env body in
            (match txn_attr with
            | None -> apply_updates session env
            | Some txn -> staged := stage_updates session env ~txn ~req_id);
            v))
  in
  (* response *)
  traced session ~cat:"serialize" "response" @@ fun _ ->
  Stats.time_serialize stats (fun () ->
      let result_nodes =
        List.filter_map
          (function Value.N n -> Some n | Value.A _ -> None)
          result
      in
      (* The overflow fallback (a by-projection request whose path
         analysis produced nothing) answers with *by-fragment semantics*,
         and says so: a full-format by-projection message would not carry
         ancestors either, so labelling it by-projection only hid the
         demotion from the receiver (ROADMAP open item, resolved PR 3). *)
      let passing, frags =
        match passing with
        | Message.By_value -> (passing, [])
        | Message.By_fragment ->
          (passing, Message.plan_by_fragment ep ~host:client_name result_nodes)
        | Message.By_projection -> (
          match Message.find_child req "projection-paths" with
          | None ->
            ( Message.By_fragment,
              Message.plan_by_fragment ep ~host:client_name result_nodes )
          | Some p ->
            let path_of n = Xd_projection.Path.of_string (X.Node.string_value n) in
            let u_paths = List.map path_of (Message.children_named p "used-path") in
            let r_paths =
              List.map path_of (Message.children_named p "returned-path")
            in
            let used =
              result_nodes
              @ List.concat_map
                  (fun p -> Xd_projection.Path.eval p result_nodes)
                  u_paths
            in
            let returned =
              List.concat_map
                (fun p -> Xd_projection.Path.eval p result_nodes)
                r_paths
            in
            ( passing,
              Message.plan_by_projection ?schema:session.schema ep
                ~host:client_name ~used ~returned ))
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"><env:Body><response";
      Message.buf_attr buf "passing" (Message.passing_to_string passing);
      (match txn_attr, tcoord with
      | Some t, Some c ->
        Message.buf_attr buf "txn" t;
        Message.buf_attr buf "staged" (string_of_int !staged);
        if c.participants <> [] then
          Message.buf_attr buf "txn-participants"
            (String.concat " " c.participants)
      | _ -> ());
      Buffer.add_char buf '>';
      Message.write_fragments buf frags;
      Message.write_sequence ep ~host:client_name ~passing ~frags buf result;
      Buffer.add_string buf "</response></env:Body></env:Envelope>";
      Buffer.contents buf)

(* Inside a transaction, a participant stages its PUL in the journal
   instead of applying it; the decision arrives later as a control
   message. Targets are validated now (same shipped-copy restriction as a
   direct apply), so prepare can only be voted on PULs that would apply
   cleanly. Returns the number of staged primitives — reported to the
   caller, which is how the coordinator learns who its participants
   are. *)
and stage_updates session (env : Env.t) ~txn ~req_id =
  match env.Env.pul with
  | None -> 0
  | Some pul when Xd_lang.Pul.is_empty pul -> 0
  | Some pul ->
    let pending = Xd_lang.Pul.list pul in
    validate_update_targets session pending;
    let n = List.length pending in
    if
      Journal.stage (journal session) ~txn
        ~req:(Option.value ~default:"" req_id)
        ~pul:(Xd_lang.Pul.to_xml pending)
    then begin
      Stats.add_txn_staged session.net.Network.stats n;
      let sp = span_note session ~cat:"txn" "stage" in
      Trace.add_attr sp "staged" (Trace.I n);
      Trace.finish session.tracer sp
    end;
    (* a deduplicated re-stage still reports its count: the answer must
       not depend on whether the first copy of the request got through *)
    n

(* ---------------- client side ------------------------------------------ *)

(* Shred a response at the client. A response that does not parse (e.g.
   truncated in flight) or is structurally broken raises a *retryable*
   transport fault; a parsed <env:Fault> re-raises as the typed
   exception it describes. Alongside the value, returns the transaction
   acknowledgement (staged count + transitive participants) when the
   response carries one. *)
and shred_response session ~ep ~host response_text :
    Value.t * (int * string list) option =
  let stats = session.net.Network.stats in
  let corrupt reason =
    raise
      (Message.Xrpc_fault { host; code = Message.Transport_corrupt; reason })
  in
  traced session ~cat:"shred" "response" @@ fun _ ->
  Stats.time_shred stats (fun () ->
      let root =
        match X.Parser.parse_doc ~strip_ws:false response_text with
        | mdoc -> X.Node.doc_node mdoc
        | exception X.Parser.Error (m, pos) ->
          corrupt (Printf.sprintf "unparsable response: %s (byte %d)" m pos)
      in
      match find_path [ "env:Envelope"; "env:Body"; "response" ] root with
      | Some resp ->
        let tinfo =
          match Message.attr_of resp "txn" with
          | None -> None
          | Some _ ->
            let staged =
              match Message.attr_of resp "staged" with
              | None -> 0
              | Some s -> (
                match int_of_string_opt s with
                | Some n -> n
                | None -> corrupt (Printf.sprintf "bad staged count %S" s))
            in
            let nested =
              match Message.attr_of resp "txn-participants" with
              | None -> []
              | Some s ->
                List.filter (fun h -> h <> "") (String.split_on_char ' ' s)
            in
            Some (staged, nested)
        in
        Message.shred_fragments ep ~from_host:host
          (Message.find_child resp "fragments");
        let v =
          match Message.find_child resp "sequence" with
          | Some seq -> Message.shred_sequence ep ~from_host:host seq
          | None -> []
        in
        (v, tinfo)
      | None -> (
        match find_path [ "env:Envelope"; "env:Body"; "env:Fault" ] root with
        | Some f ->
          let code, reason = Message.parse_fault f in
          raise (Message.Xrpc_fault { host; code; reason })
        | None -> corrupt "response is neither <response> nor <env:Fault>"))

(* A body is safe to degrade to local evaluation when it provably reads
   only: no updating expression and no user-function call (a user
   function could hide an update; builtins cannot). *)
and degradable (x : Ast.execute_at) =
  (not (Ast.contains_update x.Ast.body))
  && Ast.fold
       (fun acc e ->
         acc
         &&
         match e.Ast.desc with
         | Ast.Fun_call (f, _) -> Xd_lang.Builtin_names.is_builtin f
         | _ -> true)
       true x.Ast.body

(* Graceful degradation: the peer's query endpoint is unreachable, but
   its document store is served by a dumb replica that data shipping can
   still reach (DESIGN.md). Fetch the documents and evaluate the
   read-only body here; relative URIs in the body meant the peer's own
   store, so they resolve as xrpc://host/uri. *)
and degrade session env (x : Ast.execute_at) ~host ~args =
  Stats.incr_fallbacks session.net.Network.stats;
  traced session ~cat:"fallback" ("degrade " ^ host) @@ fun fsp ->
  Trace.add_attr fsp "host" (Trace.S host);
  let resolve e uri =
    match Xd_dgraph.Dgraph.split_xrpc_uri uri with
    | Some _ -> resolve_doc session e uri
    | None -> resolve_doc session e ("xrpc://" ^ host ^ "/" ^ uri)
  in
  Eval.local_execute_at { env with Env.resolve_doc = resolve } x ~host ~args

(* Put one message on the wire under a "network" span: wall-instant, but
   its simulated-clock interval captures the billed wire time. The
   optional [hdr_span] is the span whose ids ride in an injected
   <trace> header — the attempt span, so the receiving peer's spans
   parent under that exact attempt. *)
and send_on_wire session ~dst ?hdr_span text =
  traced session ~cat:"network" ("send " ^ dst) @@ fun nsp ->
  let r =
    match (session.tracer, hdr_span) with
    | Some _, Some (s : Trace.span) ->
      let header =
        Message.trace_header ~trace_id:s.Trace.trace_id
          ~span_id:s.Trace.span_id
      in
      let text, at, len = Message.inject_trace_header text ~header in
      Network.send ~meta:(at, len) session.net ~dst text
    | _ -> Network.send session.net ~dst text
  in
  (match r with
  | Network.Dropped -> Trace.add_attr nsp "dropped" (Trace.B true)
  | Network.Delivered _ -> ());
  r

and execute_at session env (x : Ast.execute_at) ~host ~args =
  if host = "" || host = Peer.name session.self then
    (* local execution: plain evaluation, full fidelity *)
    Eval.local_execute_at env x ~host ~args
  else begin
    let stats = session.net.Network.stats in
    traced session ~cat:"call" ("call " ^ host) @@ fun call_sp ->
    Trace.add_attr call_sp "host" (Trace.S host);
    let funcs = Env.func_list env in
    let ep = call_endpoint session in
    let req_id =
      (* only on a faulty wire: fault-free traffic stays byte-identical *)
      if Network.faulty session.net then begin
        session.next_req <- session.next_req + 1;
        Some (Printf.sprintf "%s:%d" (Peer.name session.self) session.next_req)
      end
      else None
    in
    let txn = Option.map (fun c -> c.txn_id) session.txn in
    let req_text =
      traced session ~cat:"serialize" "request" @@ fun _ ->
      Stats.time_serialize stats (fun () ->
          build_request session ~ep ~host ?req_id ?txn x ~args ~funcs)
    in
    (match session.record with
    | Some r -> r := { dir = `Request req_text; text = req_text } :: !r
    | None -> ());
    let srv = server_session session host in
    let self_name = Peer.name session.self in
    let attempts = session.retries + 1 in
    let timed_out () =
      Stats.incr_timeouts stats;
      Stats.add_network_s stats session.timeout_s
    in
    (* Each attempt is its own span — a sibling of its predecessors under
       the call span, never nested — carrying retry=N and whatever went
       wrong; the wire header names the attempt, so server-side spans
       attach to the attempt that actually delivered. *)
    let rec attempt n last =
      if n > attempts then
        (* out of attempts on retryable failures only — non-retryable
           faults raise immediately below *)
        if degradable x then degrade session env x ~host ~args
        else
          match last with
          | `Fault (code, reason) ->
            raise (Message.Xrpc_fault { host; code; reason })
          | `Timeout -> raise (Message.Xrpc_timeout { host; attempts })
      else begin
        if n > 1 then begin
          Stats.incr_retries stats;
          (* deterministic exponential backoff, charged to the wire clock *)
          Stats.add_network_s stats (0.05 *. (2. ** float_of_int (n - 2)))
        end;
        let outcome =
          traced session ~cat:"attempt" (Printf.sprintf "attempt %d" n)
          @@ fun asp ->
          Trace.add_attr asp "retry" (Trace.I (n - 1));
          match send_on_wire session ~dst:host ?hdr_span:asp req_text with
          | Network.Dropped ->
            timed_out ();
            Trace.add_attr asp "timeout" (Trace.B true);
            `Retry `Timeout
          | Network.Delivered { text = delivered; duplicated } -> (
            let resp_text =
              handle_request srv ~client_name:self_name delivered
            in
            (* a duplicated request reaches the server twice; the second
               copy is answered from the dedup cache and its reply ignored *)
            if duplicated then
              ignore (handle_request srv ~client_name:self_name delivered);
            (match session.record with
            | Some r ->
              r := { dir = `Response resp_text; text = resp_text } :: !r
            | None -> ());
            match send_on_wire session ~dst:self_name resp_text with
            | Network.Dropped ->
              timed_out ();
              Trace.add_attr asp "timeout" (Trace.B true);
              `Retry `Timeout
            | Network.Delivered { text = resp_delivered; duplicated = _ } -> (
              match shred_response session ~ep ~host resp_delivered with
              | v, tinfo ->
                (* collect transaction participants: the callee (if it
                   staged anything) plus whatever its own fan-out staged *)
                (match session.txn, tinfo with
                | Some c, Some (staged, nested) ->
                  let addp h =
                    if h <> "" && not (List.mem h c.participants) then
                      c.participants <- c.participants @ [ h ]
                  in
                  if staged > 0 then addp host;
                  List.iter addp nested
                | _ -> ());
                `Done v
              | exception Message.Xrpc_fault { host = _; code; reason }
                when Message.retryable code ->
                Trace.add_attr asp "fault"
                  (Trace.S (Message.fault_code_to_string code));
                `Retry (`Fault (code, reason))))
        in
        match outcome with `Done v -> v | `Retry last -> attempt (n + 1) last
      end
    in
    attempt 1 `Timeout
  end

(* Refuse updates whose targets live in documents this peer obtained by
   shipping (data-shipped fetches or shredded message fragments):
   updating a copy would silently diverge from the source peer. This is
   the runtime half of the paper's Section IX restriction, enforced both
   on direct application and on transactional staging. *)
and validate_update_targets session pending =
  let fetched_dids =
    Hashtbl.fold (fun _ d acc -> d.X.Doc.did :: acc) session.fetched []
  in
  List.iter
    (fun p ->
      let d = (Xd_lang.Pul.target_of p).X.Node.doc in
      if
        List.mem d.X.Doc.did fetched_dids
        || Hashtbl.mem session.ep.Message.foreign_docs d.X.Doc.did
      then
        Env.dynamic_error
          "update at %s targets a shipped copy of a remote document; \
re-run under a function-shipping strategy so the update executes at its \
source peer"
          (Peer.name session.self))
    pending

and apply_updates session (env : Env.t) =
  match env.Env.pul with
  | None -> ()
  | Some pul when Xd_lang.Pul.is_empty pul -> ()
  | Some pul ->
    let pending = Xd_lang.Pul.list pul in
    validate_update_targets session pending;
    ignore (Xd_lang.Update.apply (Peer.store session.self) pending)

(* ---------------- coordinator (2PC driver) ----------------------------- *)

(* Parse a control-message reply: an ack, a retryable condition, or a
   fatal typed exception. *)
let parse_txn_response session ~host text =
  let stats = session.net.Network.stats in
  traced session ~cat:"shred" "ack" @@ fun _ ->
  Stats.time_shred stats (fun () ->
      match X.Parser.parse_doc ~strip_ws:false text with
      | exception X.Parser.Error (m, pos) ->
        `Retry
          ( Message.Transport_corrupt,
            Printf.sprintf "unparsable ack: %s (byte %d)" m pos )
      | mdoc -> (
        let root = X.Node.doc_node mdoc in
        match find_path [ "env:Envelope"; "env:Body"; "txn-ack" ] root with
        | Some ack -> (
          match Message.parse_txn_ack ack with
          | _, a -> `Ack a
          | exception Message.Protocol_error m ->
            `Retry (Message.Transport_corrupt, m))
        | None -> (
          match find_path [ "env:Envelope"; "env:Body"; "env:Fault" ] root with
          | Some f -> (
            match Message.parse_fault f with
            | code, reason when Message.retryable code -> `Retry (code, reason)
            | code, reason -> `Fatal (Message.Xrpc_fault { host; code; reason })
            | exception Message.Protocol_error m ->
              `Retry (Message.Transport_corrupt, m))
          | None ->
            `Retry
              ( Message.Transport_corrupt,
                "ack is neither <txn-ack> nor <env:Fault>" ))))

(* One 2PC control exchange with [host], under the same timeout/backoff
   regime as a data call. Control messages are idempotent, so they carry
   no request-id and never consult the dedup cache: a duplicated commit
   simply re-acks. *)
let txn_rpc session ~host action txn : (Message.txn_ack, exn) result =
  let stats = session.net.Network.stats in
  traced session ~cat:"txn.rpc"
    (Message.txn_action_to_string action ^ " " ^ host)
  @@ fun csp ->
  Trace.add_attr csp "txn" (Trace.S txn);
  Trace.add_attr csp "host" (Trace.S host);
  let req_text =
    traced session ~cat:"serialize" "control" @@ fun _ ->
    Stats.time_serialize stats (fun () ->
        Message.write_txn_control ~action ~txn)
  in
  (match session.record with
  | Some r -> r := { dir = `Request req_text; text = req_text } :: !r
  | None -> ());
  let srv = server_session session host in
  let self_name = Peer.name session.self in
  let attempts = session.retries + 1 in
  let timed_out () =
    Stats.incr_timeouts stats;
    Stats.add_network_s stats session.timeout_s
  in
  let rec attempt n last =
    if n > attempts then
      Error
        (match last with
        | `Timeout -> Message.Xrpc_timeout { host; attempts }
        | `Fault (code, reason) -> Message.Xrpc_fault { host; code; reason })
    else begin
      if n > 1 then begin
        Stats.incr_retries stats;
        Stats.add_network_s stats (0.05 *. (2. ** float_of_int (n - 2)))
      end;
      let outcome =
        traced session ~cat:"attempt" (Printf.sprintf "attempt %d" n)
        @@ fun asp ->
        Trace.add_attr asp "retry" (Trace.I (n - 1));
        match send_on_wire session ~dst:host ?hdr_span:asp req_text with
        | Network.Dropped ->
          timed_out ();
          Trace.add_attr asp "timeout" (Trace.B true);
          `Retry `Timeout
        | Network.Delivered { text = delivered; duplicated } -> (
          let resp_text = handle_request srv ~client_name:self_name delivered in
          if duplicated then
            ignore (handle_request srv ~client_name:self_name delivered);
          (match session.record with
          | Some r -> r := { dir = `Response resp_text; text = resp_text } :: !r
          | None -> ());
          match send_on_wire session ~dst:self_name resp_text with
          | Network.Dropped ->
            timed_out ();
            Trace.add_attr asp "timeout" (Trace.B true);
            `Retry `Timeout
          | Network.Delivered { text = resp_delivered; duplicated = _ } -> (
            match parse_txn_response session ~host resp_delivered with
            | `Ack a -> `Done (Ok a)
            | `Retry (code, reason) ->
              Trace.add_attr asp "fault"
                (Trace.S (Message.fault_code_to_string code));
              `Retry (`Fault (code, reason))
            | `Fatal e -> `Done (Error e)))
      in
      match outcome with `Done r -> r | `Retry last -> attempt (n + 1) last
    end
  in
  attempt 1 `Timeout

(* Apply this peer's own staged PULs for [txn], if any: the coordinator
   is its own participant. *)
let commit_local session txn =
  let j = journal session in
  match Journal.commit j ~txn with
  | `Apply puls ->
    ignore (Xd_lang.Update.apply_staged (Peer.store session.self) puls);
    Journal.committed j ~txn
  | `Already | `Unknown -> ()

let all_ok acks = List.for_all (function Ok _ -> true | Error _ -> false) acks

(* Drive 2PC to completion. With no remote participants the transaction
   never left this peer: apply the local PUL directly — the single-peer
   fast path costs zero extra messages.

   Otherwise: journal the outline, stage + prepare our own PUL (the
   coordinator is its own participant, which is what lets recovery finish
   the local half after a coordinator restart), collect prepare votes,
   then either journal the commit decision and propagate it, or abort
   with nothing journaled but the (optional) resolution marker — presumed
   abort. A commit decision that could not reach every participant raises
   the propagation failure, and {!recover} re-drives it from the journal:
   the decision, once journaled, stands. *)
let commit_txn session (env : Env.t) (c : coord) =
  let stats = session.net.Network.stats in
  let j = journal session in
  let txn = c.txn_id in
  if c.participants = [] then apply_updates session env
  else begin
    traced session ~cat:"txn" "2pc" @@ fun tsp ->
    Trace.add_attr tsp "txn" (Trace.S txn);
    Trace.add_attr tsp "participants" (Trace.I (List.length c.participants));
    Journal.append j (Journal.Begun { txn });
    List.iter
      (fun host -> Journal.append j (Journal.Participant { txn; host }))
      c.participants;
    let local_vote =
      match env.Env.pul with
      | Some pul when not (Xd_lang.Pul.is_empty pul) -> (
        let pending = Xd_lang.Pul.list pul in
        match validate_update_targets session pending with
        | () ->
          ignore (Journal.stage j ~txn ~req:"" ~pul:(Xd_lang.Pul.to_xml pending));
          ignore (Journal.prepare j ~txn);
          None
        | exception (Env.Dynamic_error _ as e) -> Some e)
      | _ -> None
    in
    let failure =
      match local_vote with
      | Some e -> Some e
      | None ->
        List.find_map
          (fun host ->
            match txn_rpc session ~host Message.Prepare txn with
            | Ok Message.Ack_prepared -> None
            | Ok _ ->
              Some
                (Message.Xrpc_fault
                   {
                     host;
                     code = Message.Txn_aborted;
                     reason = "participant voted to abort";
                   })
            | Error e -> Some e)
          c.participants
    in
    match failure with
    | None -> (
      Journal.append j (Journal.Decided { txn });
      Stats.incr_txn_commits stats;
      Trace.add_attr tsp "decision" (Trace.S "commit");
      commit_local session txn;
      let propagation =
        List.find_map
          (fun host ->
            match txn_rpc session ~host Message.Commit txn with
            | Ok Message.Ack_committed -> None
            | Ok _ ->
              Some
                (Message.Xrpc_fault
                   {
                     host;
                     code = Message.Txn_aborted;
                     reason = "participant could not confirm the commit";
                   })
            | Error e -> Some e)
          c.participants
      in
      match propagation with
      | None -> Journal.append j (Journal.Resolved { txn })
      | Some e -> raise e)
    | Some e ->
      Stats.incr_txn_aborts stats;
      Trace.add_attr tsp "decision" (Trace.S "abort");
      Journal.abort j ~txn;
      let acks =
        List.map (fun host -> txn_rpc session ~host Message.Abort txn)
          c.participants
      in
      (* journaling the resolution of an abort is an optimization, not a
         requirement: presumed abort means an unresolved undecided txn is
         re-aborted harmlessly by recovery *)
      if all_ok acks then Journal.append j (Journal.Resolved { txn });
      raise e
  end

let fresh_txn session =
  session.next_txn <- session.next_txn + 1;
  Printf.sprintf "%s:txn%d" (Peer.name session.self) session.next_txn

(* ---------------- public API ------------------------------------------- *)

let env_for session ~funcs =
  Env.create ~funcs
    ~resolve_doc:(fun env uri -> resolve_doc session env uri)
    ~execute_at:(fun env x ~host ~args -> execute_at session env x ~host ~args)
    ~builtins:(Xd_lang.Builtins.table ())
    ~pul:(Xd_lang.Pul.create ())
    (Peer.store session.self)

let execute session (q : Ast.query) =
  let env = env_for session ~funcs:q.Ast.funcs in
  let v = Eval.eval env q.Ast.body in
  apply_updates session env;
  v

(* Execute one query as a distributed transaction: update-carrying calls
   stage at their peers, and the accumulated PUL (local + staged) commits
   atomically through 2PC when evaluation completes. *)
let execute_txn session (q : Ast.query) =
  let env = env_for session ~funcs:q.Ast.funcs in
  let c = { txn_id = fresh_txn session; participants = [] } in
  session.txn <- Some c;
  Fun.protect
    ~finally:(fun () -> session.txn <- None)
    (fun () ->
      match Eval.eval env q.Ast.body with
      | v ->
        commit_txn session env c;
        v
      | exception e ->
        (* evaluation failed mid-flight: nothing is prepared anywhere, so
           presumed abort already guarantees no participant will apply;
           eagerly release staged state where the wire allows *)
        if c.participants <> [] then begin
          Stats.incr_txn_aborts session.net.Network.stats;
          ignore
            (List.map
               (fun host -> txn_rpc session ~host Message.Abort c.txn_id)
               c.participants)
        end;
        raise e)

(* Crash recovery, run by a fresh session for the same peer (same journal
   via the network registry): finish every transaction this coordinator
   began but never resolved. A journaled decision is re-driven to commit
   — including the coordinator's own staged half — and anything undecided
   is presumed aborted. Idempotent; safe to run at any time. *)
let recover session =
  let j = journal session in
  List.iter
    (fun (txn, participants, decision) ->
      match decision with
      | `Commit ->
        commit_local session txn;
        let acks =
          List.map
            (fun host -> txn_rpc session ~host Message.Commit txn)
            participants
        in
        if all_ok acks then Journal.append j (Journal.Resolved { txn })
      | `Abort ->
        Journal.abort j ~txn;
        let acks =
          List.map
            (fun host -> txn_rpc session ~host Message.Abort txn)
            participants
        in
        if all_ok acks then Journal.append j (Journal.Resolved { txn }))
    (Journal.unresolved j)
