(* A distributed execution session: installs the execute-at and fn:doc
   hooks into the evaluator, builds/dispatches the XRPC messages, and keeps
   the per-session endpoint state that realizes bulk-RPC-style fragment
   deduplication across the calls of one query execution.

   The whole exchange exercises real code paths: requests and responses are
   serialized to XML text, accounted on the simulated wire, and parsed back
   on the other side. Only the socket is simulated. *)

module X = Xd_xml
module Ast = Xd_lang.Ast
module Value = Xd_lang.Value
module Env = Xd_lang.Env
module Eval = Xd_lang.Eval
module Trace = Xd_obs.Trace

type recorded = { dir : [ `Request of string | `Response of string ]; text : string }

(* Coordinator state of one distributed transaction: the id travels on
   every update-carrying request of the query, and the participants are
   collected from response acknowledgements (transitively — a server that
   fanned out reports its own participants back). *)
type coord = {
  txn_id : string;
  mutable participants : string list;
  epoch : int option;
      (* catalog epoch when the transaction started (dynamic topology
         only): <prepare> carries it, participants whose catalog moved
         on vote abort *)
}

type t = {
  net : Network.t;
  self : Peer.t;
  passing : Message.passing;
  bulk : bool; (* session-wide fragment caching (bulk RPC); off = per-call *)
  schema : (string -> string list) option;
      (* schema-aware projection: mandatory child elements per element *)
  ep : Message.endpoint; (* this peer's endpoint state *)
  remote_sessions : (string, t) Hashtbl.t; (* server sessions by peer name *)
  server_funcs : (string, Ast.func list) Hashtbl.t; (* module cache per client *)
  fetched : (string, X.Doc.t) Hashtbl.t; (* data-shipped documents *)
  funcs_shipped : (string, unit) Hashtbl.t; (* hosts that got our module *)
  record : recorded list ref option;
  depth : int;
  timeout_s : float; (* simulated per-call timeout *)
  retries : int; (* extra attempts after the first *)
  replied : (string, string) Hashtbl.t;
      (* server side: request-id -> cached successful response; retried
         (or duplicated) update-carrying calls apply at most once *)
  replied_order : string Queue.t; (* FIFO eviction order for the cache *)
  dedup_cap : int; (* size cap on the dedup cache *)
  mutable next_req : int; (* client side: request-id counter *)
  mutable txn : coord option;
      (* the transaction in scope: set on the coordinator for the whole
         execution, and on a server session while it evaluates a
         txn-tagged request (so nested calls propagate the id) *)
  mutable next_txn : int; (* coordinator: transaction-id counter *)
  sched : (int, int list list) Hashtbl.t;
      (* effect-analysis schedule, coordinator only: anchor (Seq/Let/For)
         vertex id -> overlap groups, each the consecutive Execute_at
         vertex ids of one group in sequential evaluation order *)
  deadline_rel : float option;
      (* coordinator only: the query's total budget in simulated seconds;
         pinned to an absolute deadline lazily at first use, because the
         executor resets the stats clock after creating the session *)
  mutable deadline_at : float option;
      (* the absolute simulated-clock deadline in scope: pinned from
         [deadline_rel] on the coordinator, set per-request on a server
         session from the wire attribute (scoped by the admission gate) *)
  retry_budget : int ref option;
      (* per-query retry budget, shared by reference with every server
         session of one plan execution: retries anywhere in the fan-out
         draw from the same pool *)
  mutable retry_after_hint : float option;
      (* the retry-after suggestion parsed off the most recent fault
         response; consumed (and cleared) by the next backoff charge *)
  codec : Codec.t option;
      (* compiled per-call-site codecs from the wire-shape analysis;
         shared with every server session of the plan (the same handle
         serves both directions of an exchange). None = generic paths
         only, wire and registry byte-identical to a codec-less build *)
  tracer : Trace.t option; (* shared across every session of one run *)
  mutable cur : Trace.span option;
      (* the ambient span new spans parent under: the executor's root on
         the coordinator, the active attempt/evaluate span elsewhere *)
}

let create ?record ?(bulk = true) ?schema ?(depth = 0) ?(timeout_s = 1.0)
    ?(retries = 2) ?(dedup_cap = 256) ?(schedule = []) ?deadline ?retry_budget
    ?codec ?tracer net self passing =
  let sched = Hashtbl.create (max 1 (List.length schedule)) in
  List.iter
    (fun (anchor, members) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt sched anchor) in
      Hashtbl.replace sched anchor (prev @ [ members ]))
    schedule;
  {
    net;
    self;
    passing;
    bulk;
    schema;
    ep = Message.make_endpoint self;
    remote_sessions = Hashtbl.create 4;
    server_funcs = Hashtbl.create 4;
    fetched = Hashtbl.create 8;
    funcs_shipped = Hashtbl.create 4;
    record;
    depth;
    timeout_s;
    retries;
    replied = Hashtbl.create 8;
    replied_order = Queue.create ();
    dedup_cap = max 1 dedup_cap;
    next_req = 0;
    txn = None;
    next_txn = 0;
    sched;
    deadline_rel = deadline;
    deadline_at = None;
    retry_budget;
    retry_after_hint = None;
    codec;
    tracer;
    cur = None;
  }

let set_current_span session sp = session.cur <- sp

(* ---------------- tracing helpers -------------------------------------- *)

(* Run [f] with [sp] as the session's ambient span. *)
let with_cur session sp f =
  let prev = session.cur in
  session.cur <- sp;
  Fun.protect ~finally:(fun () -> session.cur <- prev) (fun () -> f ())

(* A span under the current ambient one, ambient for the duration of
   [f]. All no-ops when the session has no tracer. *)
let traced ?peer session ~cat name f =
  let peer = Option.value ~default:(Peer.name session.self) peer in
  Trace.with_span session.tracer
    ~parent:(Trace.ambient session.cur)
    ~peer ~cat name
    (fun sp -> with_cur session sp (fun () -> f sp))

(* An event marker: the caller attaches attributes and finishes it. *)
let span_note session ~cat name =
  Trace.start session.tracer
    ~parent:(Trace.ambient session.cur)
    ~peer:(Peer.name session.self) ~cat name

(* Record on [sp] how far a Stats reader moved across [f] — the exact
   amount the region charged to its bucket. Span wall clocks are
   separate gettimeofday reads and drift against the gauges; the deltas
   are what lets Profile reconcile per-vertex sums with the registry
   totals to the float, not to a tolerance. No-ops when untraced. *)
let attr_delta_f sp key reader f =
  match sp with
  | None -> f ()
  | Some _ ->
      let before = reader () in
      Fun.protect
        ~finally:(fun () ->
          Trace.add_attr sp key (Trace.F (reader () -. before)))
        f

(* Same for integer counters — used to stamp network spans with the
   bytes they billed (retransmissions included, since the delta spans
   the whole exchange). *)
let attr_delta_i sp key reader f =
  match sp with
  | None -> f ()
  | Some _ ->
      let before = reader () in
      Fun.protect
        ~finally:(fun () -> Trace.add_attr sp key (Trace.I (reader () - before)))
        f

(* Traced accounting regions: a span in the matching category whose
   [busy_s] attribute carries the exact bucket delta the region charged.
   (A remote span's delta includes nested remote charges — Profile
   subtracts descendant remote spans to recover the self amount.) *)
let ser_traced session name f =
  let stats = session.net.Network.stats in
  traced session ~cat:"serialize" name @@ fun sp ->
  attr_delta_f sp "busy_s" (fun () -> Stats.serialize_s stats) @@ fun () ->
  Stats.time_serialize stats f

let shred_traced session name f =
  let stats = session.net.Network.stats in
  traced session ~cat:"shred" name @@ fun sp ->
  attr_delta_f sp "busy_s" (fun () -> Stats.shred_s stats) @@ fun () ->
  Stats.time_shred stats f

let remote_traced session name f =
  let stats = session.net.Network.stats in
  traced session ~cat:"remote" name @@ fun sp ->
  attr_delta_f sp "busy_s" (fun () -> Stats.remote_exec_s stats) @@ fun () ->
  Stats.time_remote stats f

let recorded session = Option.map (fun r -> List.rev !r) session.record

(* ---------------- retry backoff ---------------------------------------- *)

(* FNV-1a over [s], folded to 16 bits. Hand-rolled (not Hashtbl.hash) so
   the jittered schedule is pinnable across OCaml versions/platforms. *)
let fnv16 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0xffffL)

(* Deterministic per-request jitter on the exponential backoff: attempt n
   (n >= 2) waits base * [1, 2) where base doubles per retry and the
   fraction is keyed on (request id, attempt). Retries of one overlap
   group thus spread out instead of storming a recovering peer in
   lockstep, and a given request replays the same schedule every run. *)
let backoff_s ~key ~attempt =
  let base = 0.05 *. (2. ** float_of_int (attempt - 2)) in
  let jitter =
    float_of_int (fnv16 (Printf.sprintf "%s#%d" key attempt)) /. 65536.
  in
  base *. (1. +. jitter)

(* ---------------- deadline budget -------------------------------------- *)

(* The absolute deadline in scope, if any. A coordinator's relative
   budget is pinned against the simulated clock at first use — after the
   executor's stats reset — and a server session carries the absolute
   deadline its admission gate installed for the current request. *)
let deadline_now session =
  match session.deadline_at with
  | Some _ as d -> d
  | None -> (
    match session.deadline_rel with
    | None -> None
    | Some rel ->
      let d = Stats.network_s session.net.Network.stats +. rel in
      session.deadline_at <- Some d;
      Some d)

let deadline_active session =
  session.deadline_at <> None || session.deadline_rel <> None

(* Charge one backoff wait to the simulated clock, honoring a server's
   retry-after suggestion when it exceeds our own jittered schedule. The
   hint is single-use: it belongs to the fault that carried it. *)
let charge_backoff session ~key ~attempt =
  let stats = session.net.Network.stats in
  let backoff = backoff_s ~key ~attempt in
  let wait =
    match session.retry_after_hint with
    | Some ra -> Float.max backoff ra
    | None -> backoff
  in
  session.retry_after_hint <- None;
  Stats.add_network_s stats wait

(* The shared per-query retry pool: [true] when this retry may proceed
   (and is charged), [false] when the pool is spent. *)
let retry_allowed session =
  match session.retry_budget with
  | None -> true
  | Some b ->
    if !b > 0 then begin
      decr b;
      true
    end
    else begin
      Stats.incr_retry_budget_stops session.net.Network.stats;
      false
    end

(* Raise the typed non-retryable expiry fault: budgets only shrink, so a
   call whose budget is gone can never succeed by waiting. *)
let raise_expired session ~host reason =
  Stats.incr_deadline_rejects session.net.Network.stats;
  raise
    (Message.Xrpc_fault { host; code = Message.Deadline_exceeded; reason })

(* ---------------- dynamic topology helpers ----------------------------- *)

(* Redirect chains are bounded: after [max_forward_hops] unanswered
   redirects the call fails with xrpc:topo.unroutable. *)
let max_forward_hops = 4

(* The document names a body touches, as catalog keys: relative doc()
   names stay as-is, xrpc:// URIs lose their host part (ownership is the
   catalog's call, not the URI author's). Nested execute-at bodies are
   skipped — their documents are the nested call's routing problem. *)
let body_doc_names (body : Ast.expr) =
  let acc = ref [] in
  let rec go (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Execute_at x ->
      List.iter go (x.Ast.host :: List.map snd x.Ast.params)
    | _ ->
      List.iter
        (fun (d : Xd_dgraph.Dgraph.uri_dep) ->
          match d.Xd_dgraph.Dgraph.uri with
          | Xd_dgraph.Dgraph.Uri u ->
            let name =
              match Xd_dgraph.Dgraph.split_xrpc_uri u with
              | Some (_, n) -> n
              | None -> u
            in
            if not (List.mem name !acc) then acc := name :: !acc
          | Xd_dgraph.Dgraph.Wildcard | Xd_dgraph.Dgraph.Constr -> ())
        (Xd_dgraph.Dgraph.direct_uri_deps_of_vertex e);
      List.iter go (Ast.children e)
  in
  go body;
  List.rev !acc

(* The single catalogued owner of every document in [docs], if there is
   one. None when no doc is catalogued or the owners disagree — then the
   computed host stands as evaluated. *)
let catalog_owner cat docs =
  let owners =
    List.sort_uniq compare (List.filter_map (Xd_topo.Catalog.owner_of cat) docs)
  in
  match owners with [ o ] -> Some o | _ -> None

(* This peer's transaction journal — owned by the network so that every
   session serving the peer (and any later recovery session) shares it. *)
let journal session = Network.journal session.net (Peer.name session.self)

(* Cache a successful response under its request id, evicting the oldest
   entry once the cap is reached: the cache must not grow without bound
   over a long session (satellite of PR 3). An evicted id makes a very
   late retransmission re-evaluate — for updates that risk is closed by
   transactional staging, which dedups on (txn, request-id) in the
   journal instead. *)
let remember_reply session id resp =
  if not (Hashtbl.mem session.replied id) then begin
    Hashtbl.replace session.replied id resp;
    Queue.push id session.replied_order;
    if Queue.length session.replied_order > session.dedup_cap then begin
      let victim = Queue.pop session.replied_order in
      Hashtbl.remove session.replied victim;
      Stats.incr_dedup_evictions session.net.Network.stats
    end
  end

(* Parse one incoming message. With a codec installed, the streaming
   event parser shreds fragment/copy subtree content straight into
   pre-order stores *during* the parse — no intermediate message-tree
   copy — and hands the prebuilt documents to the shredders via the
   side table. Without one (ablation, or a codec-less build), the
   classic tree parse; either way the message document itself parses
   identically. *)
let parse_message session text =
  match session.codec with
  | None -> (X.Parser.parse_doc ~strip_ws:false text, None)
  | Some _ ->
    let mdoc, prebuilt = Codec.event_parse text in
    let n = Hashtbl.length prebuilt in
    if n > 0 then Stats.add_codec_event_shreds session.net.Network.stats n;
    (mdoc, Some prebuilt)

(* The server-side session object for calls from [session] to [host]:
   holds the server peer's endpoint (shredded parameters) and supports
   nested outgoing calls from that server. *)
let rec server_session session host =
  match Hashtbl.find_opt session.remote_sessions host with
  | Some s -> s
  | None ->
    if session.depth > 8 then
      Env.dynamic_error "XRPC: call nesting too deep at %s" host;
    let peer = Network.find_peer session.net host in
    let s =
      create ?record:session.record ~bulk:session.bulk ?schema:session.schema
        ~depth:(session.depth + 1) ~timeout_s:session.timeout_s
        ~retries:session.retries ~dedup_cap:session.dedup_cap
        ?retry_budget:session.retry_budget ?codec:session.codec
        ?tracer:session.tracer session.net peer session.passing
    in
    Hashtbl.replace session.remote_sessions host s;
    s

(* ---------------- data shipping (fn:doc on xrpc:// URIs) -------------- *)

and resolve_doc session env uri =
  match Xd_dgraph.Dgraph.split_xrpc_uri uri with
  | None -> Env.default_resolve_doc env uri
  | Some (host, doc_name) -> (
    if host = Peer.name session.self then
      match Peer.find_doc session.self doc_name with
      | Some d -> d
      | None -> Env.dynamic_error "document %S not found at %s" doc_name host
    else
      (* Replica shortcut (dynamic topology): when the catalog lists this
         peer as a replica of the named document and a local copy exists,
         serve it instead of shipping the whole document over the wire —
         replicas serve reads, which is what makes failover cheap. *)
      match
        match session.net.Network.catalog with
        | Some cat
          when Network.topo_active session.net
               && Xd_topo.Catalog.serves cat
                    ~peer:(Peer.name session.self)
                    ~doc:doc_name ->
          Peer.find_doc session.self doc_name
        | _ -> None
      with
      | Some d -> d
      | None -> (
      match Hashtbl.find_opt session.fetched uri with
      | Some d -> d
      | None ->
        traced session ~cat:"doc" ("fetch " ^ uri) @@ fun dsp ->
        Trace.add_attr dsp "uri" (Trace.S uri);
        let stats = session.net.Network.stats in
        let speer = Network.find_peer session.net host in
        let doc =
          match Peer.find_doc speer doc_name with
          | Some d -> d
          | None ->
            Env.dynamic_error "document %S not found at %s" doc_name host
        in
        let text =
          traced ~peer:host session ~cat:"serialize" "document" @@ fun ssp ->
          attr_delta_f ssp "busy_s" (fun () -> Stats.serialize_s stats)
          @@ fun () ->
          Stats.time_serialize stats (fun () -> X.Serializer.doc doc)
        in
        (traced session ~cat:"network" ("ship " ^ doc_name) @@ fun nsp ->
         attr_delta_i nsp "bytes" (fun () -> Stats.total_bytes stats)
         @@ fun () ->
         Network.transfer ~kind:`Document session.net (String.length text));
        let d =
          traced session ~cat:"shred" "document" @@ fun hsp ->
          attr_delta_f hsp "busy_s" (fun () -> Stats.shred_s stats)
          @@ fun () ->
          Stats.time_shred stats (fun () ->
              X.Parser.parse ~store:(Peer.store session.self) ~uri text)
        in
        Hashtbl.replace session.fetched uri d;
        d))

(* The endpoint used to marshal/shred one exchange: the session-wide one
   under bulk RPC (fragments cached across the calls of the session), or a
   fresh one per call when bulk is disabled (the ablation baseline — every
   call re-ships its nodes and responses arrive as fresh copies). *)
and call_endpoint session =
  if session.bulk then session.ep else Message.make_endpoint session.self

(* ---------------- request construction -------------------------------- *)

and parse_suffixes ss = List.map Xd_projection.Path.of_string ss

(* Used/returned node sets for the parameters of one call (by-projection).
   Parameters without projection information conservatively ship their full
   subtrees (by-fragment behaviour). *)
and param_node_sets (x : Ast.execute_at) args =
  let used = ref [] and returned = ref [] in
  List.iter
    (fun (v, value) ->
      let ctx =
        List.filter_map
          (function Value.N n -> Some n | Value.A _ -> None)
          value
      in
      if ctx <> [] then
        match
          List.find_opt (fun (pv, _, _) -> pv = v) x.Ast.param_paths
        with
        | Some (_, u_strs, r_strs) ->
          used := ctx @ !used;
          List.iter
            (fun p -> used := Xd_projection.Path.eval p ctx @ !used)
            (parse_suffixes u_strs);
          List.iter
            (fun p -> returned := Xd_projection.Path.eval p ctx @ !returned)
            (parse_suffixes r_strs)
        | None -> returned := ctx @ !returned)
    args;
  (!used, !returned)

(* The inner <request> element of one call — standalone inside its own
   envelope for a plain call, or stacked with its siblings inside one
   <batch> envelope by the scheduler. *)
and request_body session ~ep ~host ?req_id ?txn ?epoch ?(in_batch = false)
    (x : Ast.execute_at) ~args ~funcs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<request";
  Message.buf_attr buf "passing" (Message.passing_to_string session.passing);
  Message.buf_attr buf "caller" (Peer.name session.self);
  (* only stamped on a faulty wire, so fault-free traffic is byte-identical
     to a build without the fault layer *)
  (match req_id with
  | Some id -> Message.buf_attr buf "request-id" id
  | None -> ());
  (* only stamped inside a distributed transaction: the callee stages its
     PUL under this id instead of applying it *)
  (match txn with
  | Some t -> Message.buf_attr buf "txn" t
  | None -> ());
  (* only stamped under dynamic topology (non-trivial catalog): the
     caller's catalog version when it routed this call *)
  (match epoch with
  | Some e -> Message.buf_attr buf "epoch" (string_of_int e)
  | None -> ());
  (* only stamped when the query carries a deadline budget: the value is
     re-patched with the remaining budget at each send. The admission
     unit is the outermost element, so batch slots leave the budget to
     their envelope. *)
  (match (in_batch, deadline_now session) with
  | false, Some d ->
    Message.buf_deadline buf
      (d -. Stats.network_s session.net.Network.stats)
  | _ -> ());
  Message.buf_attr buf "static-base-uri" "xdx://static/";
  Message.buf_attr buf "default-collation" "codepoint";
  Message.buf_attr buf "current-dateTime" "2009-03-29T00:00:00Z";
  Buffer.add_char buf '>';
  (* ship the module (user function definitions) once per host *)
  if funcs <> [] && not (Hashtbl.mem session.funcs_shipped host) then begin
    Hashtbl.replace session.funcs_shipped host ();
    Buffer.add_string buf "<module>";
    let text =
      String.concat "\n" (List.map (Format.asprintf "%a" Xd_lang.Pp.pp_func) funcs)
    in
    Message.buf_text buf text;
    Buffer.add_string buf "</module>"
  end;
  Buffer.add_string buf "<query>";
  Message.buf_text buf (Xd_lang.Pp.expr_to_string x.Ast.body);
  Buffer.add_string buf "</query>";
  (* Per the paper, the absence of <projection-paths> tells the callee to
     answer in the full (by-fragment-style) format; only emit it when the
     analysis actually produced result paths. *)
  (if
     session.passing = Message.By_projection
     && x.Ast.result_paths <> ([], [])
   then begin
     let u, r = x.Ast.result_paths in
     Buffer.add_string buf "<projection-paths>";
     List.iter
       (fun p ->
         Buffer.add_string buf "<used-path>";
         Message.buf_text buf p;
         Buffer.add_string buf "</used-path>")
       u;
     List.iter
       (fun p ->
         Buffer.add_string buf "<returned-path>";
         Message.buf_text buf p;
         Buffer.add_string buf "</returned-path>")
       r;
     Buffer.add_string buf "</projection-paths>"
   end);
  let values = List.map snd args in
  let frags =
    match session.passing with
    | Message.By_value -> []
    | Message.By_fragment ->
      Message.plan_by_fragment ep ~host (Message.value_nodes values)
    | Message.By_projection ->
      let used, returned = param_node_sets x args in
      Message.plan_by_projection ?schema:session.schema ep ~host ~used
        ~returned
  in
  Message.write_fragments buf frags;
  Buffer.add_string buf "<call>";
  List.iter
    (fun (v, value) ->
      Message.write_sequence ep ~host ~passing:session.passing ~frags buf
        ~param:v value)
    args;
  Buffer.add_string buf "</call>";
  Buffer.add_string buf "</request>";
  Buffer.contents buf

and build_request session ~ep ~host ?req_id ?txn ?epoch x ~args ~funcs =
  Message.envelope
    (request_body session ~ep ~host ?req_id ?txn ?epoch x ~args ~funcs)

(* The compiled encoder for one call, when the wire-shape analysis
   produced one for this call site and nothing about the call needs the
   generic writer. Module shipping mutates per-host state inside the
   generic writer, so any call that still has to ship functions goes
   generic (not a bailout — the shape analysis never claimed to cover
   it). [None] from the encoder itself is a runtime shape mismatch and
   counts as one. The two writers are byte-identical by construction;
   the QCheck differential harness holds them to it. *)
and compiled_request session ~host ?req_id ?txn ?epoch (x : Ast.execute_at)
    ~args ~funcs =
  match session.codec with
  | None -> None
  | Some c ->
    if funcs <> [] && not (Hashtbl.mem session.funcs_shipped host) then None
    else (
      match Codec.find_call c x.Ast.body.Ast.id with
      | None -> None
      | Some cc -> (
        let stats = session.net.Network.stats in
        let deadline =
          Option.map
            (fun d -> d -. Stats.network_s stats)
            (deadline_now session)
        in
        match
          Codec.encode_request cc
            ~caller:(Peer.name session.self)
            ?req_id ?txn ?epoch ?deadline args
        with
        | Some text ->
          Stats.incr_codec_compiled stats;
          Some text
        | None ->
          Stats.incr_codec_bailouts stats;
          None))

(* ---------------- server side ----------------------------------------- *)

and find_path names node =
  List.fold_left
    (fun acc name ->
      match acc with
      | None -> None
      | Some n -> Message.find_child n name)
    (Some node) names

(* [session] here is the *server* session. Every failure below — a
   request that does not parse, ill-formed protocol content, or an error
   raised by the remote body — is answered with a proper <env:Fault>
   envelope carrying a code from the taxonomy, never a leaked native
   exception. Only asynchronous/implementation exceptions (Stack_overflow
   and friends) still propagate. *)
and handle_request session ~client_name request_text =
  (* A decodable <trace> header links this peer's spans under the
     caller's attempt span; without one (tracing off, or the header was
     lost to truncation / malformed) the call runs untraced. *)
  match (session.tracer, Message.peek_trace_header request_text) with
  | Some _, Some (trace_id, span_id) ->
    Trace.with_span session.tracer
      ~parent:(Trace.Remote { trace_id; span_id })
      ~peer:(Peer.name session.self) ~cat:"server" "handle"
      (fun sp ->
        Trace.add_attr sp "bytes" (Trace.I (String.length request_text));
        let resp =
          with_cur session sp (fun () ->
              handle_request_guarded session ~client_name request_text)
        in
        Trace.add_attr sp "resp_bytes" (Trace.I (String.length resp));
        resp)
  | _ -> handle_request_guarded session ~client_name request_text

(* Map an evaluation/parse failure to its protocol fault code and reason;
   [None] for asynchronous/implementation exceptions, which keep
   propagating. *)
and fault_of_exn = function
  | Message.Protocol_error m -> Some (Message.Protocol_malformed, m)
  | X.Parser.Error (m, pos) ->
    Some
      ( Message.Transport_corrupt,
        Printf.sprintf "unparsable request: %s (byte %d)" m pos )
  | Xd_lang.Parser.Error (m, pos) | Xd_lang.Lexer.Error (m, pos) ->
    Some
      ( Message.Protocol_malformed,
        Printf.sprintf "unparsable query body: %s (offset %d)" m pos )
  | Env.Dynamic_error m -> Some (Message.App_dynamic, m)
  | Value.Type_error m -> Some (Message.App_type, m)
  | Message.Xrpc_fault { host; code; reason } ->
    (* a nested call of the body failed: relay the upstream fault *)
    Some (code, Printf.sprintf "relayed from %s: %s" host reason)
  | Message.Xrpc_timeout { host; attempts } ->
    Some
      ( Message.Transport_timeout,
        Printf.sprintf "upstream peer %s did not answer (%d attempts)" host
          attempts )
  | Failure m -> Some (Message.Protocol_malformed, m)
  | _ -> None

and handle_request_guarded session ~client_name request_text =
  let stats = session.net.Network.stats in
  try handle_request_exn session ~client_name request_text
  with e -> (
    match fault_of_exn e with
    | None -> raise e
    | Some (code, reason) ->
      Stats.incr_faults ~kind:"app" stats;
      Trace.add_attr session.cur "fault"
        (Trace.S (Message.fault_code_to_string code));
      ser_traced session "fault" (fun () ->
          Message.write_fault ~code ~reason ()))

(* The admission + deadline gate. Every unit of real work — a <request>,
   a whole <batch> (units = its call count) or a 2PC control message —
   passes here before anything else runs: work whose deadline budget is
   already spent is refused outright (the dedup cache is not even
   consulted), a full admission queue sheds with a server-suggested
   retry-after, and admitted work is charged its queueing delay on the
   simulated clock. Catalog pushes are exempt — membership maintenance
   must keep flowing on an overloaded peer. With no overload model
   installed only the hard expiry check runs, and with no deadline
   attribute either the gate costs one attribute probe. *)
and admission_gate session node ~units k =
  let stats = session.net.Network.stats in
  let now = Stats.network_s stats in
  let remaining = Message.parse_deadline node in
  let abs = Option.map (fun r -> now +. r) remaining in
  let refuse code ?retry_after reason =
    (match code with
    | Message.Server_overloaded ->
      Stats.incr_ov_shed stats;
      Stats.incr_faults ~kind:"overload" stats
    | _ ->
      Stats.incr_deadline_rejects stats;
      Stats.incr_faults ~kind:"deadline" stats);
    Trace.add_attr session.cur "fault"
      (Trace.S (Message.fault_code_to_string code));
    ser_traced session "fault" (fun () ->
        Message.write_fault ?retry_after ~code ~reason ())
  in
  let verdict =
    match session.net.Network.overload with
    | None -> (
      (* no admission model installed: only the hard expiry gate runs *)
      match remaining with
      | Some r when r <= 0. ->
        `Refused
          (refuse Message.Deadline_exceeded
             "deadline budget exhausted before evaluation began")
      | _ -> `Go)
    | Some ov -> (
      let peer = Peer.name session.self in
      match Overload.admit ov ~peer ~now ?deadline:remaining ~units () with
      | Overload.Hopeless { needed_s } ->
        `Refused
          (refuse Message.Deadline_exceeded
             (Printf.sprintf
                "remaining budget cannot cover queue wait + service \
                 (%.6fs needed)"
                needed_s))
      | Overload.Busy { retry_after_s } ->
        `Refused
          (refuse Message.Server_overloaded ~retry_after:retry_after_s
             (Printf.sprintf "admission queue full at %s" peer))
      | Overload.Admit { wait_s; depth; start = _; finish = _ } ->
        Stats.add_admitted stats ~wait_s;
        Stats.set_queue_depth ~peer stats depth;
        if wait_s > 0. then begin
          Stats.add_network_s stats wait_s;
          (* bill the queueing delay to the span handling this request,
             so profiles attribute it to the vertex that caused it *)
          Trace.add_attr session.cur "queue_wait_s" (Trace.F wait_s)
        end;
        `Go)
  in
  match verdict with
  | `Refused fault -> fault
  | `Go ->
    (* scope the request's absolute deadline onto this server session:
       nested outgoing calls see (and re-stamp) the shrinking budget *)
    let prev = session.deadline_at in
    Fun.protect
      ~finally:(fun () -> session.deadline_at <- prev)
      (fun () ->
        session.deadline_at <- abs;
        k ())

and handle_request_exn session ~client_name request_text =
  let stats = session.net.Network.stats in
  let body, prebuilt =
    shred_traced session "request" (fun () ->
        let mdoc, prebuilt = parse_message session request_text in
        let root = X.Node.doc_node mdoc in
        match find_path [ "env:Envelope"; "env:Body" ] root with
        | Some b -> (b, prebuilt)
        | None ->
          Message.protocol_error
            "XRPC message without <env:Envelope>/<env:Body>")
  in
  match
    List.find_map
      (fun (name, action) ->
        Option.map (fun n -> (action, n)) (Message.find_child body name))
      [
        ("prepare", Message.Prepare);
        ("commit", Message.Commit);
        ("abort", Message.Abort);
      ]
  with
  | Some (action, n) ->
    admission_gate session n ~units:1 (fun () ->
        handle_txn_control session action
          (Message.req_attr n "txn")
          ~epoch:(Message.attr_of n "epoch"))
  | None -> (
    match Message.find_child body "batch" with
    | Some batch ->
      admission_gate session batch
        ~units:(max 1 (List.length (Message.children_named batch "request")))
        (fun () -> handle_batch session ~client_name ?prebuilt batch)
    | None -> (
      (* a catalog push: validate it and ack with our view of its epoch —
         the in-process network already shares the authoritative catalog,
         so accepting is acking *)
      match Message.find_child body "catalog" with
      | Some c ->
        let cat = Message.parse_catalog c in
        Message.write_catalog_ack ~epoch:(Xd_topo.Catalog.epoch cat)
      | None ->
      (* a <forward> is a response-position envelope; one arriving as a
         request is ill-formed protocol content and answered with a typed
         fault like any other (satellite: message tolerance) *)
      if Message.find_child body "forward" <> None then
        Message.protocol_error
          "unexpected <forward> in request position (redirects are \
           responses)";
      let req =
        match Message.find_child body "request" with
        | Some r -> r
        | None ->
          Message.protocol_error
            "XRPC message without <env:Envelope>/<env:Body>/<request>"
      in
      admission_gate session req ~units:1 @@ fun () ->
      let ep = call_endpoint session in
      let req_id = Message.attr_of req "request-id" in
      match Option.bind req_id (Hashtbl.find_opt session.replied) with
      | Some cached ->
        (* a retransmission of a request we already answered: replay the
           response instead of re-evaluating (at-most-once updates) *)
        Stats.incr_dedup_hits stats;
        Trace.add_attr session.cur "dedup" (Trace.B true);
        cached
      | None ->
        let resp =
          Message.envelope
            (handle_parsed session ~client_name ~ep ?req_id ?prebuilt req)
        in
        (match req_id with
        | Some id -> remember_reply session id resp
        | None -> ());
        resp))

(* One <batch> of independent calls: each slot is handled exactly like a
   standalone request and answered in place — a <response> on success, an
   inner <env:Fault> on failure — so one failing call never poisons its
   batch mates. Batches only travel on a fault-free wire, so slots carry
   no request-ids and need no dedup. *)
and handle_batch session ~client_name ?prebuilt batch =
  let stats = session.net.Network.stats in
  let reqs = Message.children_named batch "request" in
  if reqs = [] then
    Message.protocol_error "XRPC <batch> without <request> calls";
  traced session ~cat:"server"
    (Printf.sprintf "batch (%d calls)" (List.length reqs))
  @@ fun bsp ->
  Trace.add_attr bsp "calls" (Trace.I (List.length reqs));
  let slot req =
    (* a nested call of an earlier slot may have burned the envelope's
       whole budget: remaining slots are answered late, not evaluated *)
    match deadline_now session with
    | Some d when Stats.network_s stats >= d ->
      Stats.incr_deadline_rejects stats;
      Message.fault_body ~code:Message.Deadline_exceeded
        ~reason:"batch slot reached past the deadline budget" ()
    | _ -> (
      let ep = call_endpoint session in
      match handle_parsed session ~client_name ~ep ?prebuilt req with
      | resp -> resp
      | exception e -> (
        match fault_of_exn e with
        | None -> raise e
        | Some (code, reason) ->
          Stats.incr_faults ~kind:"app" stats;
          Message.fault_body ~code ~reason ()))
  in
  (* slots evaluate in request order — the order the sequential run would
     have issued the calls in *)
  let slots = List.fold_left (fun acc r -> slot r :: acc) [] reqs in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<batch";
  Message.buf_attr buf "calls" (string_of_int (List.length reqs));
  Buffer.add_char buf '>';
  List.iter (Buffer.add_string buf) (List.rev slots);
  Buffer.add_string buf "</batch>";
  Message.envelope (Buffer.contents buf)

(* Participant side of 2PC. All three actions are idempotent, so control
   messages need no dedup: a duplicated or retried prepare/commit/abort
   re-acks the same way. Unknown transactions vote no / ack aborted —
   presumed abort. *)
and handle_txn_control session action txn ~epoch =
  let stats = session.net.Network.stats in
  let j = journal session in
  traced session ~cat:"txn" (Message.txn_action_to_string action) @@ fun tsp ->
  Trace.add_attr tsp "txn" (Trace.S txn);
  let ack a =
    Trace.add_attr tsp "ack" (Trace.S (Message.txn_ack_to_string a));
    ser_traced session "ack" (fun () -> Message.write_txn_ack ~txn ~ack:a)
  in
  match action with
  | Message.Prepare ->
    (* Under dynamic topology <prepare> carries the coordinator's catalog
       epoch from when the transaction started; if ownership has moved
       since, some staged PUL may sit at a peer that no longer owns its
       target — vote abort, the staged state is released and every store
       stays untouched (presumed abort does the rest). *)
    let stale =
      match (epoch, session.net.Network.catalog) with
      | Some e, Some cat when Network.topo_active session.net -> (
        match int_of_string_opt e with
        | Some e -> e <> Xd_topo.Catalog.epoch cat
        | None -> Message.protocol_error "bad epoch %S on <prepare>" e)
      | _ -> false
    in
    if stale then begin
      Stats.incr_topo_epoch_aborts stats;
      Trace.add_attr tsp "stale-epoch" (Trace.B true);
      Journal.abort j ~txn;
      ack Message.Ack_aborted
    end
    else if Journal.prepare j ~txn then ack Message.Ack_prepared
    else ack Message.Ack_aborted
  | Message.Abort ->
    Journal.abort j ~txn;
    ack Message.Ack_aborted
  | Message.Commit -> (
    match Journal.commit j ~txn with
    | `Already -> ack Message.Ack_committed
    | `Unknown ->
      Message.protocol_error
        "commit for unknown or aborted transaction %s" txn
    | `Apply puls ->
      remote_traced session "apply staged" (fun () ->
          ignore (Xd_lang.Update.apply_staged (Peer.store session.self) puls));
      Journal.committed j ~txn;
      ack Message.Ack_committed)

and handle_parsed session ~client_name ~ep ?req_id ?prebuilt req =
  let passing = Message.passing_of_string (Message.req_attr req "passing") in
  let txn_attr = Message.attr_of req "txn" in
  shred_traced session "fragments" (fun () ->
      Message.shred_fragments ?prebuilt ep ~from_host:client_name
        (Message.find_child req "fragments"));
  (* module: parse and cache the caller's function definitions *)
  (match Message.find_child req "module" with
  | Some m ->
    let text = X.Node.string_value m in
    let q = Xd_lang.Parser.parse_query (text ^ "\n()") in
    Hashtbl.replace session.server_funcs client_name q.Ast.funcs
  | None -> ());
  let funcs =
    Option.value ~default:[] (Hashtbl.find_opt session.server_funcs client_name)
  in
  let body_text =
    match Message.find_child req "query" with
    | Some qn -> X.Node.string_value qn
    | None -> Message.protocol_error "XRPC request without <query>"
  in
  let args =
    match Message.find_child req "call" with
    | None -> Message.protocol_error "XRPC request without <call>"
    | Some call ->
      List.map
        (fun seq ->
          ( Message.req_attr seq "param",
            Message.shred_sequence ?prebuilt ep ~from_host:client_name seq ))
        (Message.children_named call "sequence")
  in
  (* Dynamic topology, callee side: before evaluating, check that this
     peer still serves every document the body touches — the owner for
     updates, owner-or-replica for reads. If ownership moved away, answer
     with a <forward> redirect instead of evaluating against data we no
     longer own; the caller re-resolves and retries (PROTOCOL.md,
     "Topology & forwarding"). Idempotent, so dedup replay is safe. *)
  let forward =
    match session.net.Network.catalog with
    | Some cat when Network.topo_active session.net ->
      let body = Xd_lang.Parser.parse_expr_string body_text in
      let updates = Ast.contains_update body in
      let self = Peer.name session.self in
      List.find_map
        (fun doc ->
          match Xd_topo.Catalog.resolve cat doc with
          | Some e
            when (if updates then e.Xd_topo.Catalog.owner <> self
                  else not (Xd_topo.Catalog.serves cat ~peer:self ~doc)) ->
            Some (doc, e.Xd_topo.Catalog.owner)
          | _ -> None)
        (body_doc_names body)
    | _ -> None
  in
  match forward with
  | Some (doc, owner) ->
    let epoch =
      match session.net.Network.catalog with
      | Some cat -> Xd_topo.Catalog.epoch cat
      | None -> 0
    in
    let sp = span_note session ~cat:"topo" "forward" in
    Trace.add_attr sp "doc" (Trace.S doc);
    Trace.add_attr sp "owner" (Trace.S owner);
    Trace.add_attr sp "epoch" (Trace.I epoch);
    Trace.finish session.tracer sp;
    Message.forward_body ~doc ~owner ~epoch
  | None ->
  (* while a txn-tagged request evaluates, the transaction is in scope so
     nested outgoing calls propagate the id; its participants (this peer's
     own fan-out) are reported back in the response *)
  let tcoord =
    Option.map
      (fun t -> { txn_id = t; participants = []; epoch = None })
      txn_attr
  in
  let staged = ref 0 in
  let result =
    remote_traced session "evaluate" (fun () ->
        let body = Xd_lang.Parser.parse_expr_string body_text in
        let vars =
          List.fold_left
            (fun acc (v, value) -> Env.Smap.add v value acc)
            Env.Smap.empty args
        in
        let env =
          Env.create ~vars ~funcs
            ~resolve_doc:(fun env uri -> resolve_doc session env uri)
            ~execute_at:(fun env x ~host ~args ->
              execute_at session env x ~host ~args)
            ~builtins:(Xd_lang.Builtins.table ())
            ~static_base_uri:(Message.req_attr req "static-base-uri")
            ~default_collation:(Message.req_attr req "default-collation")
            ~current_datetime:(Message.req_attr req "current-dateTime")
            ~pul:(Xd_lang.Pul.create ())
            (Peer.store session.self)
        in
        let prev_txn = session.txn in
        Fun.protect
          ~finally:(fun () -> session.txn <- prev_txn)
          (fun () ->
            (match tcoord with
            | Some _ -> session.txn <- tcoord
            | None -> ());
            let v = Eval.eval env body in
            (match txn_attr with
            | None -> apply_updates session env
            | Some txn -> staged := stage_updates session env ~txn ~req_id);
            v))
  in
  (* response *)
  ser_traced session "response" (fun () ->
      let result_nodes =
        List.filter_map
          (function Value.N n -> Some n | Value.A _ -> None)
          result
      in
      (* The overflow fallback (a by-projection request whose path
         analysis produced nothing) answers with *by-fragment semantics*,
         and says so: a full-format by-projection message would not carry
         ancestors either, so labelling it by-projection only hid the
         demotion from the receiver (ROADMAP open item, resolved PR 3). *)
      let passing, frags =
        match passing with
        | Message.By_value -> (passing, [])
        | Message.By_fragment ->
          (passing, Message.plan_by_fragment ep ~host:client_name result_nodes)
        | Message.By_projection -> (
          match Message.find_child req "projection-paths" with
          | None ->
            ( Message.By_fragment,
              Message.plan_by_fragment ep ~host:client_name result_nodes )
          | Some p ->
            let path_of n = Xd_projection.Path.of_string (X.Node.string_value n) in
            let u_paths = List.map path_of (Message.children_named p "used-path") in
            let r_paths =
              List.map path_of (Message.children_named p "returned-path")
            in
            let used =
              result_nodes
              @ List.concat_map
                  (fun p -> Xd_projection.Path.eval p result_nodes)
                  u_paths
            in
            let returned =
              List.concat_map
                (fun p -> Xd_projection.Path.eval p result_nodes)
                r_paths
            in
            ( passing,
              Message.plan_by_projection ?schema:session.schema ep
                ~host:client_name ~used ~returned ))
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "<response";
      Message.buf_attr buf "passing" (Message.passing_to_string passing);
      (match txn_attr, tcoord with
      | Some t, Some c ->
        Message.buf_attr buf "txn" t;
        Message.buf_attr buf "staged" (string_of_int !staged);
        if c.participants <> [] then
          Message.buf_attr buf "txn-participants"
            (String.concat " " c.participants)
      | _ -> ());
      Buffer.add_char buf '>';
      Message.write_fragments buf frags;
      Message.write_sequence ep ~host:client_name ~passing ~frags buf result;
      Buffer.add_string buf "</response>";
      Buffer.contents buf)

(* Inside a transaction, a participant stages its PUL in the journal
   instead of applying it; the decision arrives later as a control
   message. Targets are validated now (same shipped-copy restriction as a
   direct apply), so prepare can only be voted on PULs that would apply
   cleanly. Returns the number of staged primitives — reported to the
   caller, which is how the coordinator learns who its participants
   are. *)
and stage_updates session (env : Env.t) ~txn ~req_id =
  match env.Env.pul with
  | None -> 0
  | Some pul when Xd_lang.Pul.is_empty pul -> 0
  | Some pul ->
    let pending = Xd_lang.Pul.list pul in
    validate_update_targets session pending;
    let n = List.length pending in
    if
      Journal.stage (journal session) ~txn
        ~req:(Option.value ~default:"" req_id)
        ~pul:(Xd_lang.Pul.to_xml pending)
    then begin
      Stats.add_txn_staged session.net.Network.stats n;
      let sp = span_note session ~cat:"txn" "stage" in
      Trace.add_attr sp "staged" (Trace.I n);
      Trace.finish session.tracer sp
    end;
    (* a deduplicated re-stage still reports its count: the answer must
       not depend on whether the first copy of the request got through *)
    n

(* ---------------- client side ------------------------------------------ *)

(* Shred a response at the client. A response that does not parse (e.g.
   truncated in flight) or is structurally broken raises a *retryable*
   transport fault; a parsed <env:Fault> re-raises as the typed
   exception it describes. Alongside the value, returns the transaction
   acknowledgement (staged count + transitive participants) when the
   response carries one. *)
and shred_response_node _session ~ep ~host ?prebuilt resp :
    Value.t * (int * string list) option =
  let corrupt reason =
    raise
      (Message.Xrpc_fault { host; code = Message.Transport_corrupt; reason })
  in
  let tinfo =
    match Message.attr_of resp "txn" with
    | None -> None
    | Some _ ->
      let staged =
        match Message.attr_of resp "staged" with
        | None -> 0
        | Some s -> (
          match int_of_string_opt s with
          | Some n -> n
          | None -> corrupt (Printf.sprintf "bad staged count %S" s))
      in
      let nested =
        match Message.attr_of resp "txn-participants" with
        | None -> []
        | Some s ->
          List.filter (fun h -> h <> "") (String.split_on_char ' ' s)
      in
      Some (staged, nested)
  in
  Message.shred_fragments ?prebuilt ep ~from_host:host
    (Message.find_child resp "fragments");
  let v =
    match Message.find_child resp "sequence" with
    | Some seq -> Message.shred_sequence ?prebuilt ep ~from_host:host seq
    | None -> []
  in
  (v, tinfo)

(* Client-side response shredding. When the wire-shape analysis proved
   this call site's response atomic, the compiled decoder runs first: an
   exact prefix/suffix match around a flat <atomic> scan, agreeing with
   the generic parser on every byte string it accepts. Anything it did
   not predict — faults, forwards, txn attributes, trace headers,
   corruption — misses the prefix and falls back (codec.bailouts). *)
and shred_response session ?vertex ~ep ~host response_text :
    Value.t * (int * string list) option =
  let stats = session.net.Network.stats in
  let compiled =
    match (session.codec, vertex) with
    | Some c, Some v -> Codec.find_resp c v
    | _ -> None
  in
  match compiled with
  | Some rd -> (
    match
      shred_traced session "response" (fun () ->
          Codec.decode_response rd response_text)
    with
    | Some v ->
      Stats.incr_codec_decodes stats;
      (v, None)
    | None ->
      Stats.incr_codec_bailouts stats;
      shred_response_generic session ~ep ~host response_text)
  | None -> shred_response_generic session ~ep ~host response_text

and shred_response_generic session ~ep ~host response_text :
    Value.t * (int * string list) option =
  let corrupt reason =
    raise
      (Message.Xrpc_fault { host; code = Message.Transport_corrupt; reason })
  in
  shred_traced session "response" (fun () ->
      let root, prebuilt =
        match parse_message session response_text with
        | mdoc, prebuilt -> (X.Node.doc_node mdoc, prebuilt)
        | exception X.Parser.Error (m, pos) ->
          corrupt (Printf.sprintf "unparsable response: %s (byte %d)" m pos)
      in
      match find_path [ "env:Envelope"; "env:Body"; "response" ] root with
      | Some resp -> shred_response_node session ~ep ~host ?prebuilt resp
      | None -> (
        match find_path [ "env:Envelope"; "env:Body"; "forward" ] root with
        | Some f ->
          (* a redirect: the callee no longer owns the data. A malformed
             one is a non-retryable protocol fault (typed, never a leaked
             exception); a well-formed one raises for the forwarding
             loop in execute_at. *)
          let doc, owner, epoch =
            try Message.parse_forward f
            with Message.Protocol_error m ->
              raise
                (Message.Xrpc_fault
                   { host; code = Message.Protocol_malformed; reason = m })
          in
          raise (Message.Xrpc_forward { doc; owner; epoch })
        | None -> (
          match
            find_path [ "env:Envelope"; "env:Body"; "env:Fault" ] root
          with
          | Some f ->
            let code, reason = Message.parse_fault f in
            session.retry_after_hint <- Message.parse_retry_after f;
            raise (Message.Xrpc_fault { host; code; reason })
          | None -> corrupt "response is neither <response> nor <env:Fault>")))

(* Shred a <batch> response: one value per slot, in request order. A
   faulted slot raises after its predecessors shredded — exactly the
   state a sequential run would have reached when that call failed. *)
and shred_batch_response session ~ep ~host ~calls response_text :
    Value.t list =
  let corrupt reason =
    raise
      (Message.Xrpc_fault { host; code = Message.Transport_corrupt; reason })
  in
  shred_traced session "batch response" (fun () ->
      let root, prebuilt =
        match parse_message session response_text with
        | mdoc, prebuilt -> (X.Node.doc_node mdoc, prebuilt)
        | exception X.Parser.Error (m, pos) ->
          corrupt (Printf.sprintf "unparsable response: %s (byte %d)" m pos)
      in
      match find_path [ "env:Envelope"; "env:Body"; "batch" ] root with
      | Some b ->
        let slots =
          List.filter
            (fun n -> X.Node.kind n = X.Node.Element)
            (X.Node.children b)
        in
        if List.length slots <> calls then
          corrupt
            (Printf.sprintf "batch answered %d of %d calls"
               (List.length slots) calls);
        List.fold_left
          (fun acc slot ->
            match X.Node.name slot with
            | "response" ->
              fst (shred_response_node session ~ep ~host ?prebuilt slot) :: acc
            | "env:Fault" ->
              let code, reason = Message.parse_fault slot in
              session.retry_after_hint <- Message.parse_retry_after slot;
              raise (Message.Xrpc_fault { host; code; reason })
            | other -> corrupt ("unexpected batch slot <" ^ other ^ ">"))
          [] slots
        |> List.rev
      | None -> (
        match find_path [ "env:Envelope"; "env:Body"; "env:Fault" ] root with
        | Some f ->
          let code, reason = Message.parse_fault f in
          session.retry_after_hint <- Message.parse_retry_after f;
          raise (Message.Xrpc_fault { host; code; reason })
        | None -> corrupt "response is neither <batch> nor <env:Fault>"))

(* A body is safe to degrade to local evaluation when it provably reads
   only: no updating expression and no user-function call (a user
   function could hide an update; builtins cannot). *)
and degradable (x : Ast.execute_at) =
  (not (Ast.contains_update x.Ast.body))
  && Ast.fold
       (fun acc e ->
         acc
         &&
         match e.Ast.desc with
         | Ast.Fun_call (f, _) -> Xd_lang.Builtin_names.is_builtin f
         | _ -> true)
       true x.Ast.body

(* Graceful degradation: the peer's query endpoint is unreachable, but
   its document store is served by a dumb replica that data shipping can
   still reach (DESIGN.md). Fetch the documents and evaluate the
   read-only body here; relative URIs in the body meant the peer's own
   store, so they resolve as xrpc://host/uri. *)
and degrade session env (x : Ast.execute_at) ~host ~args =
  Stats.incr_fallbacks session.net.Network.stats;
  traced session ~cat:"fallback" ("degrade " ^ host) @@ fun fsp ->
  Trace.add_attr fsp "host" (Trace.S host);
  let resolve e uri =
    match Xd_dgraph.Dgraph.split_xrpc_uri uri with
    | Some _ -> resolve_doc session e uri
    | None -> resolve_doc session e ("xrpc://" ^ host ^ "/" ^ uri)
  in
  Eval.local_execute_at { env with Env.resolve_doc = resolve } x ~host ~args

(* Put one message on the wire under a "network" span: wall-instant, but
   its simulated-clock interval captures the billed wire time. The
   optional [hdr_span] is the span whose ids ride in an injected
   <trace> header — the attempt span, so the receiving peer's spans
   parent under that exact attempt. *)
and send_on_wire session ~dst ?hdr_span text =
  let stats = session.net.Network.stats in
  traced session ~cat:"network" ("send " ^ dst) @@ fun nsp ->
  attr_delta_i nsp "bytes" (fun () -> Stats.total_bytes stats) @@ fun () ->
  (* Re-stamp the remaining deadline budget as of *now*, pre-subtracting
     this message's own wire time: the receiver's budget then equals the
     sender's budget at the moment of receipt, so budgets are strictly
     monotone across hops. Fixed width, so patching never changes the
     message length (retries re-patch the same bytes in place). *)
  let text =
    match deadline_now session with
    | None -> text
    | Some d ->
      let remaining =
        d
        -. Stats.network_s session.net.Network.stats
        -. Network.wire_s session.net (String.length text)
      in
      fst (Message.patch_deadline text ~remaining)
  in
  (* deadline / retry-after attributes are billed but invisible to the
     fault schedule; only scan for them when the feature is in force.
     Ranges are computed on the final text — after any trace-header
     injection, which shifts offsets. *)
  let hidden t =
    if deadline_active session || Network.overload_active session.net then
      Message.overload_ranges t
    else []
  in
  let r =
    match (session.tracer, hdr_span) with
    | Some _, Some (s : Trace.span) ->
      let header =
        Message.trace_header ~trace_id:s.Trace.trace_id
          ~span_id:s.Trace.span_id
      in
      let text, at, len = Message.inject_trace_header text ~header in
      Network.send ~meta:(at, len) ~hidden:(hidden text) session.net ~dst text
    | _ -> Network.send ~hidden:(hidden text) session.net ~dst text
  in
  (match r with
  | Network.Dropped -> Trace.add_attr nsp "dropped" (Trace.B true)
  | Network.Delivered _ -> ());
  r

(* One complete exchange with [host]: request build, send, retries.
   Returns the shredded value, a <forward> redirect, or `Down after the
   retry budget is exhausted on retryable failures (non-retryable faults
   raise immediately). *)
and call_host session env (x : Ast.execute_at) ~host ~args =
  let stats = session.net.Network.stats in
  traced session ~cat:"call" ("call " ^ host) @@ fun call_sp ->
  Trace.add_attr call_sp "host" (Trace.S host);
  (* the d-graph vertex (execute-at body id) this call materializes —
     the join key between Cost's per-vertex estimates and the profile *)
  Trace.add_attr call_sp "vertex" (Trace.I x.Ast.body.Ast.id);
  Stats.incr_call ~peer:host stats;
  let funcs = Env.func_list env in
  let ep = call_endpoint session in
  let req_id =
    (* only on a faulty wire: fault-free traffic stays byte-identical *)
    if Network.faulty session.net then begin
      session.next_req <- session.next_req + 1;
      Some (Printf.sprintf "%s:%d" (Peer.name session.self) session.next_req)
    end
    else None
  in
  let txn = Option.map (fun c -> c.txn_id) session.txn in
  let epoch =
    (* only under dynamic topology: the catalog version this call was
       routed with *)
    match session.net.Network.catalog with
    | Some cat when Network.topo_active session.net ->
      Some (Xd_topo.Catalog.epoch cat)
    | _ -> None
  in
  let req_text =
    ser_traced session "request" (fun () ->
        match
          compiled_request session ~host ?req_id ?txn ?epoch x ~args ~funcs
        with
        | Some text -> text
        | None ->
          build_request session ~ep ~host ?req_id ?txn ?epoch x ~args ~funcs)
  in
  (match session.record with
  | Some r -> r := { dir = `Request req_text; text = req_text } :: !r
  | None -> ());
  let srv = server_session session host in
  let self_name = Peer.name session.self in
  let attempts = session.retries + 1 in
  (* Jitter key: (request id, destination host) when there is an id
     (faulty wire — the only place retries can happen), else the host.
     The host must be part of the key: the same logical request can be
     re-driven at a different peer after a forward or failover, and
     keying on the id alone would replay the identical jitter fractions
     at the new hop instead of re-randomizing them per (id, hop). *)
  let backoff_key =
    match req_id with Some id -> id ^ "@" ^ host | None -> host
  in
  session.retry_after_hint <- None;
  let timed_out () =
    Stats.incr_timeouts stats;
    Stats.add_network_s stats session.timeout_s
  in
  (* Each attempt is its own span — a sibling of its predecessors under
     the call span, never nested — carrying retry=N and whatever went
     wrong; the wire header names the attempt, so server-side spans
     attach to the attempt that actually delivered. *)
  let rec attempt n last =
    if n > attempts then `Down last
    else if n > 1 && not (retry_allowed session) then
      (* the shared per-query retry pool is spent: stop retrying
         everywhere, surface the last failure *)
      `Down last
    else begin
      if n > 1 then begin
        Stats.incr_retries stats;
        (* deterministic jittered exponential backoff, charged to the
           wire clock; a server-suggested retry-after can stretch it *)
        charge_backoff session ~key:backoff_key ~attempt:n
      end;
      (match deadline_now session with
      | Some d when Stats.network_s stats >= d ->
        (* the budget ran out (e.g. while backing off): the call can
           never complete in time, so nothing further goes on the wire *)
        raise_expired session ~host
          (Printf.sprintf "deadline budget exhausted before attempt %d" n)
      | _ -> ());
      let outcome =
        traced session ~cat:"attempt" (Printf.sprintf "attempt %d" n)
        @@ fun asp ->
        Trace.add_attr asp "retry" (Trace.I (n - 1));
        match send_on_wire session ~dst:host ?hdr_span:asp req_text with
        | Network.Dropped ->
          timed_out ();
          Trace.add_attr asp "timeout" (Trace.B true);
          `Retry `Timeout
        | Network.Delivered { text = delivered; duplicated } -> (
          let resp_text =
            handle_request srv ~client_name:self_name delivered
          in
          (* a duplicated request reaches the server twice; the second
             copy is answered from the dedup cache and its reply ignored *)
          if duplicated then
            ignore (handle_request srv ~client_name:self_name delivered);
          (match session.record with
          | Some r ->
            r := { dir = `Response resp_text; text = resp_text } :: !r
          | None -> ());
          match send_on_wire session ~dst:self_name resp_text with
          | Network.Dropped ->
            timed_out ();
            Trace.add_attr asp "timeout" (Trace.B true);
            `Retry `Timeout
          | Network.Delivered { text = resp_delivered; duplicated = _ } -> (
            match
              shred_response session ~vertex:x.Ast.body.Ast.id ~ep ~host
                resp_delivered
            with
            | v, tinfo ->
              (* collect transaction participants: the callee (if it
                 staged anything) plus whatever its own fan-out staged *)
              (match session.txn, tinfo with
              | Some c, Some (staged, nested) ->
                let addp h =
                  if h <> "" && not (List.mem h c.participants) then
                    c.participants <- c.participants @ [ h ]
                in
                if staged > 0 then addp host;
                List.iter addp nested
              | _ -> ());
              `Done (`Value v)
            | exception Message.Xrpc_forward { doc; owner; epoch } ->
              Trace.add_attr asp "forwarded" (Trace.B true);
              `Done (`Forward (doc, owner, epoch))
            | exception Message.Xrpc_fault { host = _; code; reason }
              when Message.retryable code ->
              Trace.add_attr asp "fault"
                (Trace.S (Message.fault_code_to_string code));
              `Retry (`Fault (code, reason))))
      in
      match outcome with `Done r -> r | `Retry last -> attempt (n + 1) last
    end
  in
  attempt 1 `Timeout

(* A live replacement peer for a call whose owner is down: some live,
   not-yet-tried peer that serves (owns or replicates) *every* document
   the body touches. None when any touched document is uncatalogued, the
   body touches no documents, or no such peer remains. *)
and failover_target session (x : Ast.execute_at) ~visited down_host =
  match session.net.Network.catalog with
  | Some cat when Network.topo_active session.net -> (
    let docs = body_doc_names x.Ast.body in
    let entries = List.filter_map (Xd_topo.Catalog.resolve cat) docs in
    if entries = [] || List.length entries < List.length docs then None
    else
      let serving (e : Xd_topo.Catalog.entry) = e.owner :: e.replicas in
      let candidates =
        List.fold_left
          (fun acc e -> List.filter (fun p -> List.mem p (serving e)) acc)
          (serving (List.hd entries))
          (List.tl entries)
      in
      let dead p =
        p = down_host || p = Peer.name session.self || List.mem p visited
        || not (Xd_topo.Catalog.is_up cat p)
      in
      List.sort_uniq compare candidates
      |> List.find_opt (fun p -> not (dead p)))
  | _ -> None

and execute_at session env (x : Ast.execute_at) ~host ~args =
  if host = "" || host = Peer.name session.self then
    (* local execution: plain evaluation, full fidelity *)
    Eval.local_execute_at env x ~host ~args
  else begin
    let stats = session.net.Network.stats in
    let catalog = session.net.Network.catalog in
    let topo = Network.topo_active session.net in
    (* Runtime host resolution: a *computed* host is checked against the
       catalog at call time — when every document the body touches has
       one catalogued owner, the call is routed there, whatever the host
       expression evaluated to. Literal hosts route as written (the
       verifier vouched for them statically). *)
    let host =
      match catalog with
      | Some cat
        when topo
             && not
                  (match x.Ast.host.Ast.desc with
                  | Ast.Literal (Ast.A_string _) -> true
                  | _ -> false) -> (
        match catalog_owner cat (body_doc_names x.Ast.body) with
        | Some owner ->
          Stats.incr_topo_resolutions stats;
          if owner <> host then begin
            let sp = span_note session ~cat:"topo" "resolve" in
            Trace.add_attr sp "computed" (Trace.S host);
            Trace.add_attr sp "owner" (Trace.S owner);
            Trace.finish session.tracer sp
          end;
          owner
        | None -> host)
      | _ -> host
    in
    (* The forwarding/failover loop: follow <forward> redirects (bounded
       hops, loop detection via the visited set), re-resolving each one
       against the catalog; when a peer stays down, fail over to a live
       replica for read-only bodies, else degrade/raise exactly as the
       static build would. *)
    (* Per-peer circuit breaker (overload model only). An open breaker
       sheds the call locally — it never touches the wire — and the shed
       call falls through the same ladder a down peer uses: replica
       failover, local degradation, or a typed overload fault. Half-open
       breakers let one deterministic probe through. *)
    let breaker_verdict host =
      match session.net.Network.overload with
      | None -> `Proceed
      | Some ov -> (
        match
          Overload.breaker_check ov ~peer:host ~now:(Stats.network_s stats)
        with
        | Overload.Proceed -> `Proceed
        | Overload.Probe ->
          Stats.incr_breaker_probes stats;
          `Proceed
        | Overload.Shed { until } ->
          Stats.incr_breaker_shed stats;
          `Shed until)
    in
    let breaker_failure host =
      match session.net.Network.overload with
      | None -> ()
      | Some ov ->
        let before = Overload.breaker_opens ov in
        Overload.breaker_failure ov ~peer:host ~now:(Stats.network_s stats);
        if Overload.breaker_opens ov > before then
          Stats.incr_breaker_opens stats
    in
    let rec drive ~hops ~visited host =
      match breaker_verdict host with
      | `Shed until -> (
        let sp = span_note session ~cat:"overload" "breaker shed" in
        Trace.add_attr sp "host" (Trace.S host);
        Trace.finish session.tracer sp;
        match failover_target session x ~visited host with
        | Some replica when degradable x ->
          Stats.incr_topo_failovers stats;
          drive ~hops ~visited:(host :: visited) replica
        | _ ->
          if degradable x then degrade session env x ~host ~args
          else
            raise
              (Message.Xrpc_fault
                 {
                   host;
                   code = Message.Server_overloaded;
                   reason =
                     Printf.sprintf
                       "circuit breaker open for %s until t=%.3fs" host until;
                 }))
      | `Proceed -> (
      match call_host session env x ~host ~args with
      | `Value v ->
        Stats.set_peer_up ~peer:host stats true;
        (match session.net.Network.overload with
        | Some ov -> Overload.breaker_success ov ~peer:host
        | None -> ());
        v
      | `Forward (doc, fwd_owner, fwd_epoch) ->
        Stats.incr_forwarded stats;
        let sp = span_note session ~cat:"topo" "forward" in
        Trace.add_attr sp "from" (Trace.S host);
        Trace.add_attr sp "doc" (Trace.S doc);
        Trace.add_attr sp "owner" (Trace.S fwd_owner);
        Trace.add_attr sp "epoch" (Trace.I fwd_epoch);
        Trace.finish session.tracer sp;
        (* re-resolve against our catalog; the redirect's claimed owner
           is the fallback when the document is not (or no longer)
           catalogued here *)
        let owner =
          match catalog with
          | Some cat ->
            Option.value ~default:fwd_owner (Xd_topo.Catalog.owner_of cat doc)
          | None -> fwd_owner
        in
        let unroutable reason =
          raise
            (Message.Xrpc_fault
               { host; code = Message.Topo_unroutable; reason })
        in
        if hops <= 0 then
          unroutable
            (Printf.sprintf
               "forward hop limit (%d) exhausted chasing %s" max_forward_hops
               doc)
        else if List.mem owner (host :: visited) then
          unroutable
            (Printf.sprintf "forward loop: %s already answered for %s" owner
               doc)
        else drive ~hops:(hops - 1) ~visited:(host :: visited) owner
      | `Down last -> (
        Stats.set_peer_up ~peer:host stats false;
        breaker_failure host;
        (match catalog with
        | Some cat -> Xd_topo.Catalog.mark_down cat host
        | None -> ());
        match failover_target session x ~visited host with
        | Some replica when degradable x ->
          Stats.incr_topo_failovers stats;
          let sp = span_note session ~cat:"topo" "failover" in
          Trace.add_attr sp "down" (Trace.S host);
          Trace.add_attr sp "replica" (Trace.S replica);
          Trace.finish session.tracer sp;
          drive ~hops ~visited:(host :: visited) replica
        | _ -> (
          (* out of attempts on retryable failures only — non-retryable
             faults raised inside call_host *)
          if degradable x then degrade session env x ~host ~args
          else
            match last with
            | `Fault (code, reason) ->
              raise (Message.Xrpc_fault { host; code; reason })
            | `Timeout ->
              raise
                (Message.Xrpc_timeout
                   { host; attempts = session.retries + 1 }))))
    in
    drive ~hops:max_forward_hops ~visited:[] host
  end

(* ---------------- dependency-aware scheduler --------------------------- *)

(* One coalesced round trip: every member's <request> body rides in a
   single <batch> envelope to [host], answered slot-by-slot in one
   response envelope (PROTOCOL.md, "Batched calls"). Only reachable on a
   fault-free wire, so there are no request-ids, retries or timeouts. *)
and batch_call session env ~host
    (items : (Ast.execute_at * (Ast.var * Value.t) list) list) : Value.t list
    =
  let stats = session.net.Network.stats in
  let n = List.length items in
  traced session ~cat:"call" (Printf.sprintf "batch %s (%d calls)" host n)
  @@ fun bsp ->
  Trace.add_attr bsp "host" (Trace.S host);
  Trace.add_attr bsp "calls" (Trace.I n);
  (* a batch materializes several vertices in one envelope; its shared
     costs are attributed to the first member's vertex, and the full
     membership rides along for the profile's benefit *)
  (match items with
  | (x, _) :: _ -> Trace.add_attr bsp "vertex" (Trace.I x.Ast.body.Ast.id)
  | [] -> ());
  Trace.add_attr bsp "vertices"
    (Trace.S
       (String.concat ","
          (List.map
             (fun ((x : Ast.execute_at), _) -> string_of_int x.Ast.body.Ast.id)
             items)));
  let funcs = Env.func_list env in
  let ep = call_endpoint session in
  let txn = Option.map (fun c -> c.txn_id) session.txn in
  List.iter (fun _ -> Stats.incr_call ~peer:host stats) items;
  let req_text =
    ser_traced session "batch request" (fun () ->
        let buf = Buffer.create 1024 in
        Buffer.add_string buf "<batch";
        Message.buf_attr buf "caller" (Peer.name session.self);
        Message.buf_attr buf "calls" (string_of_int n);
        (* the envelope is the admission unit: it carries the budget for
           all its slots (re-patched at send), and the slots carry none *)
        (match deadline_now session with
        | Some d ->
          Message.buf_deadline buf (d -. Stats.network_s stats)
        | None -> ());
        Buffer.add_char buf '>';
        List.iter
          (fun (x, args) ->
            Buffer.add_string buf
              (request_body session ~ep ~host ?txn ~in_batch:true x ~args
                 ~funcs))
          items;
        Buffer.add_string buf "</batch>";
        Message.envelope (Buffer.contents buf))
  in
  Stats.add_batch stats ~calls:n;
  (match session.record with
  | Some r -> r := { dir = `Request req_text; text = req_text } :: !r
  | None -> ());
  let srv = server_session session host in
  let self_name = Peer.name session.self in
  let undeliverable () =
    (* unreachable: batches only form on a fault-free wire *)
    raise (Message.Xrpc_timeout { host; attempts = 1 })
  in
  match send_on_wire session ~dst:host ?hdr_span:bsp req_text with
  | Network.Dropped -> undeliverable ()
  | Network.Delivered { text = delivered; duplicated = _ } -> (
    let resp_text = handle_request srv ~client_name:self_name delivered in
    (match session.record with
    | Some r -> r := { dir = `Response resp_text; text = resp_text } :: !r
    | None -> ());
    match send_on_wire session ~dst:self_name resp_text with
    | Network.Dropped -> undeliverable ()
    | Network.Delivered { text = resp_delivered; duplicated = _ } ->
      shred_batch_response session ~ep ~host ~calls:n resp_delivered)

(* Execute one overlap group. Members are provably pure and pairwise
   non-interfering (the effect analysis only groups read-only calls), so
   they may run in any interleaving; the simulated clock bills the group
   by its longest member (critical path) instead of the sum. On a faulty
   wire members still travel as individual messages in sequential order —
   the wire stays byte-identical to the sequential run under any fault
   schedule — and only the clock overlaps; on a fault-free wire,
   same-peer members additionally coalesce into one <batch> envelope per
   peer. *)
and run_group session (units : (Env.t * Ast.expr) list) : Value.t list =
  let stats = session.net.Network.stats in
  let n = List.length units in
  traced session ~cat:"sched" (Printf.sprintf "overlap (%d calls)" n)
  @@ fun gsp ->
  Trace.add_attr gsp "calls" (Trace.I n);
  let t0 = Stats.network_s stats in
  let deltas = ref [] in
  let maxd () = List.fold_left Float.max 0. !deltas in
  (* each wire unit restarts the clock at the group's start; the group
     finishes when its longest unit does *)
  let unit f =
    Stats.set_network_s stats t0;
    match f () with
    | v ->
      deltas := (Stats.network_s stats -. t0) :: !deltas;
      v
    | exception e ->
      (* settle the clock before the failure propagates: everything that
         ran (including the failed member) overlapped *)
      deltas := (Stats.network_s stats -. t0) :: !deltas;
      Stats.set_network_s stats (t0 +. maxd ());
      raise e
  in
  let finish vs =
    let sum = List.fold_left ( +. ) 0. !deltas and m = maxd () in
    Stats.set_network_s stats (t0 +. m);
    Stats.add_sched_group stats ~overlapped:n ~saved_s:(sum -. m);
    vs
  in
  if
    Network.faulty session.net
    || Network.topo_active session.net
    || Network.overload_active session.net
  then
    (* Sequential wire units (still overlapped on the clock): the retry
       machinery needs each call to own its round trip, under dynamic
       topology each call must be free to chase forwards and fail over on
       its own, and under admission control each call must own its
       retry-after/backoff loop when shed — a <batch> envelope can do
       none of these. *)
    finish (List.map (fun (env, e) -> unit (fun () -> Eval.eval env e)) units)
  else begin
    (* pre-evaluate hosts and arguments in sequential order, then bucket
       the remote calls by destination peer *)
    let prepared =
      List.map
        (fun (env, e) ->
          match e.Ast.desc with
          | Ast.Execute_at x ->
            let host = Value.string_value (Eval.eval env x.Ast.host) in
            let args =
              List.map (fun (v, pe) -> (v, Eval.eval env pe)) x.Ast.params
            in
            if host = "" || host = Peer.name session.self then
              `Local (env, x, host, args)
            else `Remote (env, x, host, args)
          | _ -> `Plain (env, e))
        units
    in
    let results = Array.make n [] in
    let order = ref [] and byhost = Hashtbl.create 4 in
    List.iteri
      (fun i u ->
        match u with
        | `Remote (env, x, host, args) -> (
          match Hashtbl.find_opt byhost host with
          | Some l -> l := (i, env, x, args) :: !l
          | None ->
            Hashtbl.add byhost host (ref [ (i, env, x, args) ]);
            order := host :: !order)
        | `Local _ | `Plain _ -> ())
      prepared;
    List.iter
      (fun host ->
        match List.rev !(Hashtbl.find byhost host) with
        | [ (i, env, x, args) ] ->
          (* a lone call to this peer coalesces nothing: plain round trip *)
          results.(i) <- unit (fun () -> execute_at session env x ~host ~args)
        | (_, env0, _, _) :: _ as items ->
          let vs =
            unit (fun () ->
                batch_call session env0 ~host
                  (List.map (fun (_, _, x, args) -> (x, args)) items))
          in
          List.iter2 (fun (i, _, _, _) v -> results.(i) <- v) items vs
        | [] -> ())
      (List.rev !order);
    List.iteri
      (fun i u ->
        match u with
        | `Local (env, x, host, args) ->
          results.(i) <- unit (fun () -> execute_at session env x ~host ~args)
        | `Plain (env, e) -> results.(i) <- unit (fun () -> Eval.eval env e)
        | `Remote _ -> ())
      prepared;
    finish (Array.to_list results)
  end

(* The Env.schedule hook: fires at the Seq/Let/For vertices named as
   group anchors, replacing sequential evaluation of the member calls
   with an overlap group. Any shape mismatch — the expression under this
   vertex does not carry the expected member ids, e.g. a schedule derived
   from a different query — falls back to plain sequential evaluation via
   [None]. *)
and run_scheduled session env (e : Ast.expr) : Value.t option =
  match Hashtbl.find_opt session.sched e.Ast.id with
  | None -> None
  | Some groups -> (
    match e.Ast.desc with
    | Ast.Seq es -> sched_seq session env groups es
    | Ast.Let _ -> (
      match groups with
      | [ members ] -> sched_let session env members e
      | _ -> None)
    | Ast.For (v, src, body) -> (
      match groups with
      | [ [ m ] ] when m = body.Ast.id -> sched_for session env v src body
      | _ -> None)
    | _ -> None)

(* A Seq anchor: each group is a run of consecutive children. Matched
   runs execute as overlap groups; everything else (and any group that no
   longer matches) evaluates sequentially in place. *)
and sched_seq session env groups es =
  let rec split_at k l =
    if k = 0 then ([], l)
    else
      match l with
      | [] -> ([], [])
      | x :: tl ->
        let a, b = split_at (k - 1) tl in
        (x :: a, b)
  in
  let rec prefix ms l =
    match (ms, l) with
    | [], _ -> true
    | m :: ms', (x : Ast.expr) :: l' -> m = x.Ast.id && prefix ms' l'
    | _ :: _, [] -> false
  in
  let rec go acc gs (cs : Ast.expr list) =
    match cs with
    | [] -> List.rev acc
    | c :: tl -> (
      match List.find_opt (fun ms -> prefix ms cs) gs with
      | Some members ->
        let run, rest = split_at (List.length members) cs in
        let vs = run_group session (List.map (fun m -> (env, m)) run) in
        go (List.rev_append vs acc) (List.filter (fun g -> g != members) gs)
          rest
      | None -> go (Eval.eval env c :: acc) gs tl)
  in
  Some (List.concat (go [] groups es))

(* A Let-chain anchor: the member ids name the bound values along the
   spine, whose continuation then evaluates under all the bindings. *)
and sched_let session env members e =
  let rec collect acc remaining (cur : Ast.expr) =
    match (remaining, cur.Ast.desc) with
    | [], _ -> Some (List.rev acc, cur)
    | m :: ms, Ast.Let (v, value, rest) when value.Ast.id = m ->
      collect ((v, value) :: acc) ms rest
    | _ -> None
  in
  match collect [] members e with
  | None -> None
  | Some (binds, k) ->
    let vs =
      run_group session (List.map (fun (_, value) -> (env, value)) binds)
    in
    let env' =
      List.fold_left2
        (fun env (v, _) value -> Env.bind env v value)
        env binds vs
    in
    Some (Eval.eval env' k)

(* A For anchor whose body is a pure call: every iteration issues an
   independent member — per-iteration fan-out. *)
and sched_for session env v src body =
  let seq = Eval.eval env src in
  match seq with
  | [] | [ _ ] ->
    (* nothing to overlap *)
    Some
      (List.concat_map
         (fun item -> Eval.eval (Env.bind env v [ item ]) body)
         seq)
  | _ ->
    let units = List.map (fun item -> (Env.bind env v [ item ], body)) seq in
    Some (List.concat (run_group session units))

(* Refuse updates whose targets live in documents this peer obtained by
   shipping (data-shipped fetches or shredded message fragments):
   updating a copy would silently diverge from the source peer. This is
   the runtime half of the paper's Section IX restriction, enforced both
   on direct application and on transactional staging. *)
and validate_update_targets session pending =
  let fetched_dids =
    Hashtbl.fold (fun _ d acc -> d.X.Doc.did :: acc) session.fetched []
  in
  List.iter
    (fun p ->
      let d = (Xd_lang.Pul.target_of p).X.Node.doc in
      if
        List.mem d.X.Doc.did fetched_dids
        || Hashtbl.mem session.ep.Message.foreign_docs d.X.Doc.did
      then
        Env.dynamic_error
          "update at %s targets a shipped copy of a remote document; \
re-run under a function-shipping strategy so the update executes at its \
source peer"
          (Peer.name session.self))
    pending

and apply_updates session (env : Env.t) =
  match env.Env.pul with
  | None -> ()
  | Some pul when Xd_lang.Pul.is_empty pul -> ()
  | Some pul ->
    let pending = Xd_lang.Pul.list pul in
    validate_update_targets session pending;
    ignore (Xd_lang.Update.apply (Peer.store session.self) pending)

(* ---------------- coordinator (2PC driver) ----------------------------- *)

(* Parse a control-message reply: an ack, a retryable condition, or a
   fatal typed exception. *)
let parse_txn_response session ~host text =
  shred_traced session "ack" (fun () ->
      match X.Parser.parse_doc ~strip_ws:false text with
      | exception X.Parser.Error (m, pos) ->
        `Retry
          ( Message.Transport_corrupt,
            Printf.sprintf "unparsable ack: %s (byte %d)" m pos )
      | mdoc -> (
        let root = X.Node.doc_node mdoc in
        match find_path [ "env:Envelope"; "env:Body"; "txn-ack" ] root with
        | Some ack -> (
          match Message.parse_txn_ack ack with
          | _, a -> `Ack a
          | exception Message.Protocol_error m ->
            `Retry (Message.Transport_corrupt, m))
        | None -> (
          match find_path [ "env:Envelope"; "env:Body"; "env:Fault" ] root with
          | Some f -> (
            match
              let code, reason = Message.parse_fault f in
              session.retry_after_hint <- Message.parse_retry_after f;
              (code, reason)
            with
            | code, reason when Message.retryable code -> `Retry (code, reason)
            | code, reason -> `Fatal (Message.Xrpc_fault { host; code; reason })
            | exception Message.Protocol_error m ->
              `Retry (Message.Transport_corrupt, m))
          | None ->
            `Retry
              ( Message.Transport_corrupt,
                "ack is neither <txn-ack> nor <env:Fault>" ))))

(* One 2PC control exchange with [host], under the same timeout/backoff
   regime as a data call. Control messages are idempotent, so they carry
   no request-id and never consult the dedup cache: a duplicated commit
   simply re-acks. *)
let txn_rpc session ~host ?epoch action txn : (Message.txn_ack, exn) result =
  let stats = session.net.Network.stats in
  traced session ~cat:"txn.rpc"
    (Message.txn_action_to_string action ^ " " ^ host)
  @@ fun csp ->
  Trace.add_attr csp "txn" (Trace.S txn);
  Trace.add_attr csp "host" (Trace.S host);
  (* 2PC control consumes deadline budget like any other hop: the value
     here is a placeholder, re-patched with the remaining budget at each
     send *)
  let deadline =
    Option.map (fun d -> d -. Stats.network_s stats) (deadline_now session)
  in
  let req_text =
    ser_traced session "control" (fun () ->
        Message.write_txn_control ?epoch ?deadline ~action ~txn ())
  in
  (match session.record with
  | Some r -> r := { dir = `Request req_text; text = req_text } :: !r
  | None -> ());
  let srv = server_session session host in
  let self_name = Peer.name session.self in
  let attempts = session.retries + 1 in
  session.retry_after_hint <- None;
  let timed_out () =
    Stats.incr_timeouts stats;
    Stats.add_network_s stats session.timeout_s
  in
  let out_of_attempts last =
    Error
      (match last with
      | `Timeout -> Message.Xrpc_timeout { host; attempts }
      | `Fault (code, reason) -> Message.Xrpc_fault { host; code; reason })
  in
  let rec attempt n last =
    if n > attempts then out_of_attempts last
    else if n > 1 && not (retry_allowed session) then
      (* the shared per-query retry pool is spent *)
      out_of_attempts last
    else begin
      if n > 1 then begin
        Stats.incr_retries stats;
        charge_backoff session
          ~key:(txn ^ "/" ^ Message.txn_action_to_string action ^ "@" ^ host)
          ~attempt:n
      end;
      match deadline_now session with
      | Some d when Stats.network_s stats >= d ->
        Stats.incr_deadline_rejects stats;
        Error
          (Message.Xrpc_fault
             {
               host;
               code = Message.Deadline_exceeded;
               reason =
                 Printf.sprintf
                   "deadline budget exhausted before 2PC %s attempt %d"
                   (Message.txn_action_to_string action)
                   n;
             })
      | _ ->
      let outcome =
        traced session ~cat:"attempt" (Printf.sprintf "attempt %d" n)
        @@ fun asp ->
        Trace.add_attr asp "retry" (Trace.I (n - 1));
        match send_on_wire session ~dst:host ?hdr_span:asp req_text with
        | Network.Dropped ->
          timed_out ();
          Trace.add_attr asp "timeout" (Trace.B true);
          `Retry `Timeout
        | Network.Delivered { text = delivered; duplicated } -> (
          let resp_text = handle_request srv ~client_name:self_name delivered in
          if duplicated then
            ignore (handle_request srv ~client_name:self_name delivered);
          (match session.record with
          | Some r -> r := { dir = `Response resp_text; text = resp_text } :: !r
          | None -> ());
          match send_on_wire session ~dst:self_name resp_text with
          | Network.Dropped ->
            timed_out ();
            Trace.add_attr asp "timeout" (Trace.B true);
            `Retry `Timeout
          | Network.Delivered { text = resp_delivered; duplicated = _ } -> (
            match parse_txn_response session ~host resp_delivered with
            | `Ack a -> `Done (Ok a)
            | `Retry (code, reason) ->
              Trace.add_attr asp "fault"
                (Trace.S (Message.fault_code_to_string code));
              `Retry (`Fault (code, reason))
            | `Fatal e -> `Done (Error e)))
      in
      match outcome with `Done r -> r | `Retry last -> attempt (n + 1) last
    end
  in
  attempt 1 `Timeout

(* Apply this peer's own staged PULs for [txn], if any: the coordinator
   is its own participant. *)
let commit_local session txn =
  let j = journal session in
  match Journal.commit j ~txn with
  | `Apply puls ->
    ignore (Xd_lang.Update.apply_staged (Peer.store session.self) puls);
    Journal.committed j ~txn
  | `Already | `Unknown -> ()

let all_ok acks = List.for_all (function Ok _ -> true | Error _ -> false) acks

(* Drive 2PC to completion. With no remote participants the transaction
   never left this peer: apply the local PUL directly — the single-peer
   fast path costs zero extra messages.

   Otherwise: journal the outline, stage + prepare our own PUL (the
   coordinator is its own participant, which is what lets recovery finish
   the local half after a coordinator restart), collect prepare votes,
   then either journal the commit decision and propagate it, or abort
   with nothing journaled but the (optional) resolution marker — presumed
   abort. A commit decision that could not reach every participant raises
   the propagation failure, and {!recover} re-drives it from the journal:
   the decision, once journaled, stands. *)
let commit_txn session (env : Env.t) (c : coord) =
  let stats = session.net.Network.stats in
  let j = journal session in
  let txn = c.txn_id in
  if c.participants = [] then apply_updates session env
  else begin
    traced session ~cat:"txn" "2pc" @@ fun tsp ->
    Trace.add_attr tsp "txn" (Trace.S txn);
    Trace.add_attr tsp "participants" (Trace.I (List.length c.participants));
    Journal.append j (Journal.Begun { txn });
    List.iter
      (fun host -> Journal.append j (Journal.Participant { txn; host }))
      c.participants;
    let local_vote =
      match env.Env.pul with
      | Some pul when not (Xd_lang.Pul.is_empty pul) -> (
        let pending = Xd_lang.Pul.list pul in
        match validate_update_targets session pending with
        | () ->
          ignore (Journal.stage j ~txn ~req:"" ~pul:(Xd_lang.Pul.to_xml pending));
          ignore (Journal.prepare j ~txn);
          None
        | exception (Env.Dynamic_error _ as e) -> Some e)
      | _ -> None
    in
    let failure =
      match local_vote with
      | Some e -> Some e
      | None ->
        List.find_map
          (fun host ->
            match txn_rpc session ~host ?epoch:c.epoch Message.Prepare txn with
            | Ok Message.Ack_prepared -> None
            | Ok _ ->
              Some
                (Message.Xrpc_fault
                   {
                     host;
                     code = Message.Txn_aborted;
                     reason = "participant voted to abort";
                   })
            | Error e -> Some e)
          c.participants
    in
    match failure with
    | None -> (
      Journal.append j (Journal.Decided { txn });
      Stats.incr_txn_commits stats;
      Trace.add_attr tsp "decision" (Trace.S "commit");
      commit_local session txn;
      let propagation =
        List.find_map
          (fun host ->
            match txn_rpc session ~host Message.Commit txn with
            | Ok Message.Ack_committed -> None
            | Ok _ ->
              Some
                (Message.Xrpc_fault
                   {
                     host;
                     code = Message.Txn_aborted;
                     reason = "participant could not confirm the commit";
                   })
            | Error e -> Some e)
          c.participants
      in
      match propagation with
      | None -> Journal.append j (Journal.Resolved { txn })
      | Some e -> raise e)
    | Some e ->
      Stats.incr_txn_aborts stats;
      Trace.add_attr tsp "decision" (Trace.S "abort");
      Journal.abort j ~txn;
      let acks =
        List.map (fun host -> txn_rpc session ~host Message.Abort txn)
          c.participants
      in
      (* journaling the resolution of an abort is an optimization, not a
         requirement: presumed abort means an unresolved undecided txn is
         re-aborted harmlessly by recovery *)
      if all_ok acks then Journal.append j (Journal.Resolved { txn });
      raise e
  end

let fresh_txn session =
  session.next_txn <- session.next_txn + 1;
  Printf.sprintf "%s:txn%d" (Peer.name session.self) session.next_txn

(* ---------------- public API ------------------------------------------- *)

let env_for session ~funcs =
  let schedule =
    if Hashtbl.length session.sched = 0 then None
    else Some (fun env e -> run_scheduled session env e)
  in
  Env.create ?schedule ~funcs
    ~resolve_doc:(fun env uri -> resolve_doc session env uri)
    ~execute_at:(fun env x ~host ~args -> execute_at session env x ~host ~args)
    ~builtins:(Xd_lang.Builtins.table ())
    ~pul:(Xd_lang.Pul.create ())
    (Peer.store session.self)

let execute session (q : Ast.query) =
  let env = env_for session ~funcs:q.Ast.funcs in
  let v = Eval.eval env q.Ast.body in
  apply_updates session env;
  v

(* Execute one query as a distributed transaction: update-carrying calls
   stage at their peers, and the accumulated PUL (local + staged) commits
   atomically through 2PC when evaluation completes. *)
let execute_txn session (q : Ast.query) =
  let env = env_for session ~funcs:q.Ast.funcs in
  (* Under dynamic topology, pin the catalog epoch at transaction start:
     <prepare> carries it, so any ownership movement during evaluation
     makes every participant vote abort — updates refuse to commit across
     an epoch change. *)
  let epoch =
    match session.net.Network.catalog with
    | Some cat when Network.topo_active session.net ->
      Some (Xd_topo.Catalog.epoch cat)
    | _ -> None
  in
  let c = { txn_id = fresh_txn session; participants = []; epoch } in
  session.txn <- Some c;
  Fun.protect
    ~finally:(fun () -> session.txn <- None)
    (fun () ->
      match Eval.eval env q.Ast.body with
      | v ->
        commit_txn session env c;
        v
      | exception e ->
        (* evaluation failed mid-flight: nothing is prepared anywhere, so
           presumed abort already guarantees no participant will apply;
           eagerly release staged state where the wire allows *)
        if c.participants <> [] then begin
          Stats.incr_txn_aborts session.net.Network.stats;
          ignore
            (List.map
               (fun host -> txn_rpc session ~host Message.Abort c.txn_id)
               c.participants)
        end;
        raise e)

(* Crash recovery, run by a fresh session for the same peer (same journal
   via the network registry): finish every transaction this coordinator
   began but never resolved. A journaled decision is re-driven to commit
   — including the coordinator's own staged half — and anything undecided
   is presumed aborted. Idempotent; safe to run at any time. *)
let recover session =
  let j = journal session in
  List.iter
    (fun (txn, participants, decision) ->
      match decision with
      | `Commit ->
        commit_local session txn;
        let acks =
          List.map
            (fun host -> txn_rpc session ~host Message.Commit txn)
            participants
        in
        if all_ok acks then Journal.append j (Journal.Resolved { txn })
      | `Abort ->
        Journal.abort j ~txn;
        let acks =
          List.map
            (fun host -> txn_rpc session ~host Message.Abort txn)
            participants
        in
        if all_ok acks then Journal.append j (Journal.Resolved { txn }))
    (Journal.unresolved j)
