(** Deterministic fault injection for the simulated wire.

    A (spec, seed) pair names exactly one fault schedule: the network
    consults {!decide} for every XRPC message, and all randomness comes
    from one PRNG seeded at {!create}, so identical runs see identical
    drops, duplicates, truncations and crashes. Document fetches (data
    shipping) are not subject to injection — they model a dumb replica
    server that stays reachable when a peer's query endpoint crashes.

    The spec mini-language (xdxq [--fault-spec]):

    {v
    spec  := rule (";" rule)*              empty spec = no faults
    rule  := [ PEER ":" ] kind [ "=" PARAM ] [ "@" PROB ] [ "#" LIMIT ]
             [ "%" SKIP ]
    kind  := drop | dup | truncate | delay | crash | restart | down
    v}

    A rule without a PEER matches any destination. [PROB] is the
    per-message firing probability (default 1); [LIMIT] caps total
    firings — ["drop@1#1"] kills exactly the first message; [SKIP] arms
    the rule only after that many matching messages passed —
    ["peerA:restart#1%3"] crash-restarts peerA exactly at its 4th
    message. [delay=S] adds S simulated seconds; [crash=K] makes the
    target drop this and the next K-1 messages; [restart=K] is a crash
    that additionally wipes the target's volatile transaction state (its
    journal replays with presumed abort — see {!Journal}); [down] is a
    permanent crash. *)

type kind =
  | Drop
  | Dup
  | Truncate
  | Delay of float
  | Crash of int
  | Restart of int
  | Down

type rule = {
  target : string option;  (** [None] = any destination peer *)
  kind : kind;
  prob : float;
  limit : int option;
  skip : int;
}

type spec = rule list

type t

type outcome =
  | Pass
  | Drop_msg
  | Duplicate
  | Truncate_at of int  (** deliver only this many leading bytes *)
  | Delay_by of float
  | Restart_peer
      (** dropped, and the destination peer's journal must crash-restart *)

val parse : string -> (spec, string) result
val spec_to_string : spec -> string

val create : ?seed:int -> spec -> t
val none : t

val enabled : t -> bool
(** [false] for an empty spec: the network then bypasses the fault layer
    entirely (identical wire traffic to a fault-free build). *)

val injected : t -> int
(** Total faults injected so far. *)

val decide : t -> dst:string -> len:int -> outcome
(** The fate of one message of [len] bytes addressed to peer [dst].
    Consults (and updates) crash state first, then the rules in spec
    order; the first rule that fires wins. *)
