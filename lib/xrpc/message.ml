(* The XRPC wire protocol: SOAP-style XML messages in the three passing
   semantics of the paper.

   - pass-by-value: every node item is deep-copied into the message in its
     own wrapper; the receiver shreds each wrapper into a separate fresh
     document. Identity, order, ancestors and cross-item structure are lost
     — exactly Problems 1-4.

   - pass-by-fragment: all node-valued data is grouped in a <fragments>
     preamble. Only the *maximal* subtrees are serialized (a shipped node
     that is a descendant of another shipped node is never serialized
     twice), fragments are sorted in document order, and the <call> section
     carries (fragid, nodeid) references. Additionally every reference
     carries an origin key, and both endpoints keep per-session origin
     tables: a node that was received from the other side earlier in the
     session is referenced back by *its* origin instead of being re-copied.
     This generalizes the paper's single-message dedup to the whole bulk
     session, preserving node identity across round trips (a remote
     function returning its own parameter yields the caller's original
     node, not a copy).

   - pass-by-projection: like by-fragment, but fragments contain the
     runtime projection (Algorithm 1) of the used/returned node sets
     derived from the relative projection paths, and the request carries a
     <projection-paths> element telling the callee how to project the
     response. Ancestors up to the lowest common ancestor travel with the
     data, so reverse/horizontal axes and fn:root/fn:id/fn:idref work on
     shipped nodes.

   Document ids of shredded fragments are derived from origin keys, so
   document order among fragments of one sending store is preserved at the
   receiver — the by-fragment ordering guarantee, extended session-wide. *)

module X = Xd_xml
module Value = Xd_lang.Value
module Iset = Set.Make (Int)

type passing = By_value | By_fragment | By_projection

(* A structurally ill-formed message: the XML parsed, but the protocol
   content is wrong (missing elements/attributes, bad references, unknown
   enumeration values). The server answers these with a non-retryable
   protocol fault instead of letting them surface as confusing downstream
   dynamic errors. *)
exception Protocol_error of string

let protocol_error fmt =
  Format.kasprintf (fun s -> raise (Protocol_error s)) fmt

let passing_to_string = function
  | By_value -> "by-value"
  | By_fragment -> "by-fragment"
  | By_projection -> "by-projection"

let passing_of_string = function
  | "by-value" -> By_value
  | "by-fragment" -> By_fragment
  | "by-projection" -> By_projection
  | s -> protocol_error "unknown passing mode %S" s

(* ------------------------------------------------------------------ *)
(* SOAP Faults.                                                        *)
(* ------------------------------------------------------------------ *)

(* The fault-code taxonomy (PROTOCOL.md). Transport-class faults are
   retryable: the same request may well succeed on a clean wire. The
   others are deterministic — retrying cannot help. *)
type fault_code =
  | Transport_corrupt (* message damaged in flight (e.g. truncated) *)
  | Transport_timeout (* an upstream peer did not answer in time *)
  | Protocol_malformed (* well-formed XML, ill-formed protocol content *)
  | App_dynamic (* XQuery dynamic error raised by the remote body *)
  | App_type (* XQuery type error raised by the remote body *)
  | Txn_aborted (* the distributed transaction was aborted by 2PC *)
  | Topo_unroutable (* forwarding could not reach an owner (hop limit
                       exhausted or a redirect loop) *)
  | Server_overloaded (* admission queue full: the peer sheds the request
                         and suggests a retry-after delay *)
  | Deadline_exceeded (* the remaining deadline budget cannot cover the
                         call's minimum service time *)

exception
  Xrpc_fault of { host : string; code : fault_code; reason : string }

exception Xrpc_timeout of { host : string; attempts : int }

(* A well-formed <forward> redirect answer: the callee no longer owns the
   data; the caller should re-resolve and retry at [owner]. Raised by the
   response shredder, consumed by Session's forwarding loop. *)
exception Xrpc_forward of { doc : string; owner : string; epoch : int }

(* Server_overloaded is retryable — the queue drains; the server even
   suggests when (retry-after). Deadline_exceeded is not: the budget only
   shrinks, so the retry would be rejected harder. *)
let retryable = function
  | Transport_corrupt | Transport_timeout | Server_overloaded -> true
  | Protocol_malformed | App_dynamic | App_type | Txn_aborted
  | Topo_unroutable | Deadline_exceeded ->
    false

let fault_code_to_string = function
  | Transport_corrupt -> "xrpc:transport.corrupt"
  | Transport_timeout -> "xrpc:transport.timeout"
  | Protocol_malformed -> "xrpc:protocol.malformed"
  | App_dynamic -> "xrpc:app.dynamic-error"
  | App_type -> "xrpc:app.type-error"
  | Txn_aborted -> "xrpc:txn.aborted"
  | Topo_unroutable -> "xrpc:topo.unroutable"
  | Server_overloaded -> "xrpc:server.overloaded"
  | Deadline_exceeded -> "xrpc:deadline.exceeded"

let fault_code_of_string = function
  | "xrpc:transport.corrupt" -> Transport_corrupt
  | "xrpc:transport.timeout" -> Transport_timeout
  | "xrpc:protocol.malformed" -> Protocol_malformed
  | "xrpc:app.dynamic-error" -> App_dynamic
  | "xrpc:app.type-error" -> App_type
  | "xrpc:txn.aborted" -> Txn_aborted
  | "xrpc:topo.unroutable" -> Topo_unroutable
  | "xrpc:server.overloaded" -> Server_overloaded
  | "xrpc:deadline.exceeded" -> Deadline_exceeded
  | s -> protocol_error "unknown fault code %S" s

(* SOAP 1.2 top-level role: sender faults are the caller's doing,
   everything else is on the receiving side. *)
let fault_role = function
  | Protocol_malformed -> "env:Sender"
  | Transport_corrupt | Transport_timeout | App_dynamic | App_type
  | Txn_aborted | Topo_unroutable | Server_overloaded | Deadline_exceeded ->
    "env:Receiver"

(* ------------------------------------------------------------------ *)
(* Session endpoint state.                                             *)
(* ------------------------------------------------------------------ *)

(* Provenance of a document shredded from a remote fragment: which host it
   came from, which remote document, and the remote original tree index for
   each local tree index (omap.(local_idx) = remote_idx; index 0 is the
   local document node). *)
type foreign = { from_host : string; remote_did : int; omap : int array }

type endpoint = {
  self : Peer.t;
  foreign_docs : (int, foreign) Hashtbl.t; (* local did -> provenance *)
  origin : (string * int * int, X.Node.t) Hashtbl.t;
      (* (host, remote did, remote idx) -> local node *)
  shipped : (string, (int, Iset.t ref) Hashtbl.t) Hashtbl.t;
      (* per dest host: my did -> indices already shipped there *)
  host_base : (string, int) Hashtbl.t;
  mutable next_base : int;
}

let make_endpoint peer =
  {
    self = peer;
    foreign_docs = Hashtbl.create 16;
    origin = Hashtbl.create 64;
    shipped = Hashtbl.create 4;
    host_base = Hashtbl.create 4;
    next_base = 1;
  }

(* Bases are allocated from a global counter so synthesized document ids
   never collide across endpoints/stores. *)
let global_base = ref 1

let base_for ep host =
  match Hashtbl.find_opt ep.host_base host with
  | Some b -> b
  | None ->
    let b = !global_base lsl 44 in
    incr global_base;
    ep.next_base <- ep.next_base + 1;
    Hashtbl.replace ep.host_base host b;
    b

let shipped_for ep host =
  match Hashtbl.find_opt ep.shipped host with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 8 in
    Hashtbl.replace ep.shipped host h;
    h

let shipped_set tbl did =
  match Hashtbl.find_opt tbl did with
  | Some s -> s
  | None ->
    let s = ref Iset.empty in
    Hashtbl.replace tbl did s;
    s

(* Remote origin of a local tree node w.r.t. destination host, if it was
   shredded from that host's data. *)
let remote_origin ep ~host n =
  match Hashtbl.find_opt ep.foreign_docs n.X.Node.doc.X.Doc.did with
  | Some f when f.from_host = host ->
    let idx = X.Node.index n in
    if idx < Array.length f.omap then Some (f.remote_did, f.omap.(idx))
    else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Writer helpers.                                                     *)
(* ------------------------------------------------------------------ *)

let buf_attr buf name v =
  Buffer.add_char buf ' ';
  Buffer.add_string buf name;
  Buffer.add_string buf "=\"";
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.add_char buf '"'

let buf_text buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s

(* The SOAP wrapper shared by every message; batch responses embed the
   per-call bodies (responses and faults) side by side inside one
   envelope, so the pieces are built separately. *)
let envelope body =
  "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"><env:Body>"
  ^ body ^ "</env:Body></env:Envelope>"

(* Deadline and retry-after ride the wire as fixed-width attributes, so
   their byte cost is deterministic and they can be re-stamped in place on
   every retry attempt without reserializing the message (PROTOCOL.md,
   "Deadlines & overload"). Like the <trace> header they are invisible to
   the fault schedule — installing a deadline must not shift which
   messages an existing fault spec hits — but unlike <trace> they ARE
   billed: the budget is real protocol payload. *)

let deadline_width = 15 (* "00000000.100000" — %015.6f *)
let deadline_value s = Printf.sprintf "%0*.6f" deadline_width (Float.max 0. s)
let deadline_marker = " deadline=\""
let deadline_attr_len = String.length deadline_marker + deadline_width + 1

let retry_after_width = 8 (* "000.0500" — %08.4f *)

let retry_after_value s =
  Printf.sprintf "%0*.4f" retry_after_width (Float.max 0. s)

let retry_after_marker = " retry-after=\""

let buf_deadline buf s =
  Buffer.add_string buf deadline_marker;
  Buffer.add_string buf (deadline_value s);
  Buffer.add_char buf '"'

(* Just the <env:Fault> element (PROTOCOL.md, "Faults"). *)
let fault_body ?retry_after ~code ~reason () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<env:Fault";
  (match retry_after with
  | Some s ->
    Buffer.add_string buf retry_after_marker;
    Buffer.add_string buf (retry_after_value s);
    Buffer.add_char buf '"'
  | None -> ());
  Buffer.add_string buf "><env:Code><env:Value>";
  Buffer.add_string buf (fault_role code);
  Buffer.add_string buf "</env:Value><env:Subcode><env:Value>";
  Buffer.add_string buf (fault_code_to_string code);
  Buffer.add_string buf
    "</env:Value></env:Subcode></env:Code><env:Reason><env:Text>";
  buf_text buf reason;
  Buffer.add_string buf "</env:Text></env:Reason></env:Fault>";
  Buffer.contents buf

(* A complete <env:Fault> response envelope. *)
let write_fault ?retry_after ~code ~reason () =
  envelope (fault_body ?retry_after ~code ~reason ())

(* ------------------------------------------------------------------ *)
(* Transaction control envelopes (PROTOCOL.md, "Transactions").        *)
(* ------------------------------------------------------------------ *)

(* 2PC control messages are tiny dedicated envelopes: the coordinator
   sends <prepare/commit/abort txn="T"/>, the participant acks with
   <txn-ack txn="T" state="…"/>. They are idempotent by construction, so
   unlike <request> they carry no request-id and need no dedup cache. *)

type txn_action = Prepare | Commit | Abort

let txn_action_to_string = function
  | Prepare -> "prepare"
  | Commit -> "commit"
  | Abort -> "abort"

type txn_ack = Ack_prepared | Ack_committed | Ack_aborted

let txn_ack_to_string = function
  | Ack_prepared -> "prepared"
  | Ack_committed -> "committed"
  | Ack_aborted -> "aborted"

let txn_ack_of_string = function
  | "prepared" -> Ack_prepared
  | "committed" -> Ack_committed
  | "aborted" -> Ack_aborted
  | s -> protocol_error "unknown transaction ack state %S" s

(* [epoch] rides only on <prepare> under dynamic topology: the participant
   refuses to prepare when its catalog epoch has moved on (PROTOCOL.md,
   "Topology & forwarding"). Absent epoch = static build, byte-identical.
   [deadline] rides 2PC control only when the query has a budget — control
   messages consume it like any other hop. *)
let write_txn_control ?epoch ?deadline ~action ~txn () =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"><env:Body><";
  Buffer.add_string buf (txn_action_to_string action);
  buf_attr buf "txn" txn;
  (match epoch with
  | Some e -> buf_attr buf "epoch" (string_of_int e)
  | None -> ());
  (match deadline with Some s -> buf_deadline buf s | None -> ());
  Buffer.add_string buf "/></env:Body></env:Envelope>";
  Buffer.contents buf

let write_txn_ack ~txn ~ack =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"><env:Body><txn-ack";
  buf_attr buf "txn" txn;
  buf_attr buf "state" (txn_ack_to_string ack);
  Buffer.add_string buf "/></env:Body></env:Envelope>";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Topology envelopes (PROTOCOL.md, "Topology & forwarding").          *)
(* ------------------------------------------------------------------ *)

(* A peer that no longer owns [doc] answers a request with a redirect in
   response position instead of evaluating: the caller re-resolves and
   retries at [owner]. [epoch] is the answering peer's catalog version, so
   the caller can tell a fresh redirect from a stale one. *)
let forward_body ~doc ~owner ~epoch =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "<forward";
  buf_attr buf "doc" doc;
  buf_attr buf "owner" owner;
  buf_attr buf "epoch" (string_of_int epoch);
  Buffer.add_string buf "/>";
  Buffer.contents buf

(* The catalog itself as an envelope: how a replicated registry travels
   between peers (and how [--show-catalog] round-trips in tests). *)
let catalog_body cat =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<catalog";
  buf_attr buf "epoch" (string_of_int (Xd_topo.Catalog.epoch cat));
  Buffer.add_string buf ">";
  List.iter
    (fun e ->
      Buffer.add_string buf "<entry";
      buf_attr buf "doc" e.Xd_topo.Catalog.doc;
      buf_attr buf "owner" e.Xd_topo.Catalog.owner;
      if e.Xd_topo.Catalog.replicas <> [] then
        buf_attr buf "replicas" (String.concat " " e.Xd_topo.Catalog.replicas);
      Buffer.add_string buf "/>")
    (Xd_topo.Catalog.entries cat);
  List.iter
    (fun (p, up) ->
      Buffer.add_string buf "<member";
      buf_attr buf "peer" p;
      buf_attr buf "up" (if up then "true" else "false");
      Buffer.add_string buf "/>")
    (Xd_topo.Catalog.members cat);
  Buffer.add_string buf "</catalog>";
  Buffer.contents buf

let write_catalog_ack ~epoch =
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"><env:Body><catalog-ack";
  buf_attr buf "epoch" (string_of_int epoch);
  Buffer.add_string buf "/></env:Body></env:Envelope>";
  Buffer.contents buf

(* ---- the optional <trace> telemetry header (PROTOCOL.md, "Tracing") ---- *)

let trace_header ~trace_id ~span_id =
  Printf.sprintf "<trace trace-id=\"%s\" span-id=\"%s\"/>" trace_id span_id

(* Naive substring search; messages are one-shot and small enough. *)
let find_sub text sub =
  let n = String.length text and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub text i m = sub then Some i
    else go (i + 1)
  in
  go 0

let body_open = "<env:Body>"

let inject_trace_header text ~header =
  match find_sub text body_open with
  | None -> (text, 0, 0) (* not an envelope: ship unmodified, no header *)
  | Some i ->
    let at = i + String.length body_open in
    ( String.sub text 0 at ^ header
      ^ String.sub text at (String.length text - at),
      at,
      String.length header )

(* Textual peek, deliberately tolerant: any header we cannot fully
   decode — absent, cut off by a truncation fault, missing an attribute,
   or carrying non-hex ids — yields [None] and the call proceeds
   untraced. A malformed header is never worth a fault. *)
let peek_trace_header text =
  let quoted_value text from =
    match String.index_from_opt text from '"' with
    | None -> None
    | Some e -> Some (String.sub text from (e - from), e + 1)
  in
  match find_sub text "<trace trace-id=\"" with
  | None -> None
  | Some i -> (
    let tstart = i + String.length "<trace trace-id=\"" in
    match quoted_value text tstart with
    | None -> None
    | Some (trace_id, after) -> (
      let sep = " span-id=\"" in
      let have_sep =
        String.length text >= after + String.length sep
        && String.sub text after (String.length sep) = sep
      in
      if not have_sep then None
      else
        match quoted_value text (after + String.length sep) with
        | None -> None
        | Some (span_id, after) ->
          let closed =
            String.length text >= after + 2
            && String.sub text after 2 = "/>"
          in
          if
            closed
            && Xd_obs.Trace.valid_id trace_id
            && Xd_obs.Trace.valid_id span_id
          then Some (trace_id, span_id)
          else None))

(* ---- deadline & retry-after wire fields (PROTOCOL.md, "Deadlines &
   overload") ---- *)

let find_sub_from text from sub =
  let n = String.length text and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub text i m = sub then Some i
    else go (i + 1)
  in
  go (Stdlib.max 0 from)

(* Re-stamp the (first, i.e. the envelope's own) deadline attribute with
   the budget remaining *now* — called once per send attempt, after the
   wire time of this very message has been pre-subtracted, so the value
   the callee reads is exactly its budget at receipt. Returns the byte
   range of the whole attribute so the sender can hide it from the fault
   schedule. *)
let patch_deadline text ~remaining =
  match find_sub text deadline_marker with
  | None -> (text, None)
  | Some i ->
    let vstart = i + String.length deadline_marker in
    if String.length text < vstart + deadline_width + 1 then (text, None)
    else begin
      let b = Bytes.of_string text in
      Bytes.blit_string (deadline_value remaining) 0 b vstart deadline_width;
      (Bytes.to_string b, Some (i, deadline_attr_len))
    end

(* Fixed-width attribute value: digits and exactly one dot. *)
let overload_value_ok text vstart width =
  String.length text >= vstart + width + 1
  && text.[vstart + width] = '"'
  &&
  let ok = ref true and dots = ref 0 in
  for k = vstart to vstart + width - 1 do
    match text.[k] with
    | '0' .. '9' -> ()
    | '.' -> incr dots
    | _ -> ok := false
  done;
  !ok && !dots = 1

(* Byte ranges of every deadline / retry-after attribute in [text], sorted
   by position — the fault schedule must not see these bytes, or turning
   on deadlines would shift which messages an existing spec hits. Only
   consulted when the overload layer is active. *)
let overload_ranges text =
  let collect marker width acc =
    let mlen = String.length marker in
    let rec go from acc =
      match find_sub_from text from marker with
      | None -> acc
      | Some i ->
        if overload_value_ok text (i + mlen) width then
          go (i + mlen + width + 1) ((i, mlen + width + 1) :: acc)
        else go (i + mlen) acc
    in
    go 0 acc
  in
  collect deadline_marker deadline_width []
  |> collect retry_after_marker retry_after_width
  |> List.sort compare

(* The node used for structural shipping: attributes travel with their
   owner element. *)
let effective_node n =
  if X.Node.is_attribute n then X.Node.of_tree n.X.Node.doc (X.Node.index n)
  else n

(* ------------------------------------------------------------------ *)
(* Fragment planning (sender side).                                    *)
(* ------------------------------------------------------------------ *)

type frag = {
  fr_okey : int * int; (* (sender did, sender root idx) *)
  fr_base_uri : string option;
  fr_omap : int list option; (* explicit map (by-projection); None = contiguous *)
  fr_content : Buffer.t -> unit; (* serializer for the fragment content *)
  fr_nodeid : int -> int option; (* sender tree idx -> nodeid in fragment *)
}

(* All node items of a list of values. *)
let value_nodes vs =
  List.concat_map
    (fun v ->
      List.filter_map (function Value.N n -> Some n | Value.A _ -> None) v)
    vs

(* By-fragment: ship maximal subtrees of the not-yet-shipped local nodes. *)
let plan_by_fragment ep ~host nodes =
  let local =
    List.filter (fun n -> remote_origin ep ~host n = None) nodes
    |> List.map effective_node
  in
  let maximal = X.Seq_ops.maximal local in
  let tbl = shipped_for ep host in
  let to_send =
    List.filter
      (fun m ->
        let s = shipped_set tbl m.X.Node.doc.X.Doc.did in
        not (Iset.mem (X.Node.index m) !s))
      maximal
  in
  List.map
    (fun m ->
      let d = m.X.Node.doc in
      let idx = X.Node.index m in
      let s = shipped_set tbl d.X.Doc.did in
      for i = idx to idx + d.X.Doc.size.(idx) do
        s := Iset.add i !s
      done;
      let size = d.X.Doc.size.(idx) in
      {
        fr_okey = (d.X.Doc.did, idx);
        fr_base_uri = X.Doc.uri d;
        fr_omap = None;
        fr_content = (fun buf -> X.Serializer.node_to_buf buf m);
        fr_nodeid =
          (fun i -> if i >= idx && i <= idx + size then Some (i - idx + 1) else None);
      })
    to_send

(* By-projection: project each touched document on the used/returned node
   sets and ship the projection (unless everything needed was already
   shipped this session). *)
let plan_by_projection ?schema ep ~host ~used ~returned =
  let local n = remote_origin ep ~host n = None in
  (* a *returned* attribute only needs its owner element bare: attributes
     always travel with their element, so the owner goes to the used set
     (shipping its whole subtree would defeat the projection) *)
  let ret_attrs, ret_elems =
    List.partition X.Node.is_attribute (List.filter local returned)
  in
  let used =
    (List.filter local used |> List.map effective_node)
    @ List.map effective_node ret_attrs
  in
  let returned = ret_elems in
  let tbl = shipped_for ep host in
  let groups = Xd_projection.Runtime.group_by_doc (used @ returned) in
  List.filter_map
    (fun (d, _) ->
      let pr = Xd_projection.Runtime.project ?schema ~used ~returned d in
      if pr.Xd_projection.Runtime.kept = 0 then None
      else begin
        let kept_orig =
          Hashtbl.fold (fun o _ acc -> o :: acc) pr.Xd_projection.Runtime.map []
        in
        let s = shipped_set tbl d.X.Doc.did in
        if List.for_all (fun o -> Iset.mem o !s) kept_orig then None
        else begin
          List.iter (fun o -> s := Iset.add o !s) kept_orig;
          (* omap: original index per projected preorder position 1.. *)
          let pairs =
            Hashtbl.fold
              (fun o p acc -> if p >= 1 then (p, o) :: acc else acc)
              pr.Xd_projection.Runtime.map []
            |> List.sort compare
          in
          let omap = List.map snd pairs in
          let pdoc = pr.Xd_projection.Runtime.doc in
          let pmap = pr.Xd_projection.Runtime.map in
          let base = pr.Xd_projection.Runtime.content_root in
          let root_idx = pr.Xd_projection.Runtime.orig_content_root in
          (* a projection that kept a whole contiguous subtree needs no
             explicit map: the receiver derives it from the okey, exactly
             as for by-fragment fragments *)
          let contiguous =
            List.for_all2
              (fun pos o -> o = root_idx + pos)
              (List.init (List.length omap) Fun.id)
              omap
          in
          Some
            {
              fr_okey = (d.X.Doc.did, root_idx);
              fr_base_uri = X.Doc.uri d;
              fr_omap = (if contiguous then None else Some omap);
              fr_content =
                (fun buf ->
                  List.iter
                    (X.Serializer.node_to_buf buf)
                    (X.Node.children (X.Node.doc_node pdoc)));
              fr_nodeid =
                (fun i ->
                  match Hashtbl.find_opt pmap i with
                  | Some p when p >= base -> Some (p - base + 1)
                  | _ -> None);
            }
        end
      end)
    groups

let write_fragments buf frags =
  Buffer.add_string buf "<fragments>";
  List.iter
    (fun f ->
      Buffer.add_string buf "<fragment";
      let did, idx = f.fr_okey in
      buf_attr buf "okey" (Printf.sprintf "%d:%d" did idx);
      (match f.fr_omap with
      | Some omap ->
        buf_attr buf "omap" (String.concat " " (List.map string_of_int omap))
      | None -> ());
      (match f.fr_base_uri with
      | Some u -> buf_attr buf "base-uri" u
      | None -> ());
      Buffer.add_char buf '>';
      f.fr_content buf;
      Buffer.add_string buf "</fragment>")
    frags;
  Buffer.add_string buf "</fragments>"

(* ------------------------------------------------------------------ *)
(* Item marshaling.                                                    *)
(* ------------------------------------------------------------------ *)

let atom_type = function
  | Value.String _ -> "string"
  | Value.Integer _ -> "integer"
  | Value.Double _ -> "double"
  | Value.Boolean _ -> "boolean"
  | Value.Untyped _ -> "untyped"

let write_atom buf a =
  Buffer.add_string buf "<atomic";
  buf_attr buf "type" (atom_type a);
  Buffer.add_char buf '>';
  buf_text buf (Value.atom_to_string a);
  Buffer.add_string buf "</atomic>"

(* by-value item *)
let write_copy buf n =
  let kind_name =
    match X.Node.kind n with
    | X.Node.Document -> "document"
    | X.Node.Element -> "element"
    | X.Node.Attribute -> "attribute"
    | X.Node.Text -> "text"
    | X.Node.Comment -> "comment"
    | X.Node.Pi -> "pi"
  in
  Buffer.add_string buf "<copy";
  buf_attr buf "kind" kind_name;
  (match X.Node.kind n with
  | X.Node.Attribute ->
    buf_attr buf "name" (X.Node.name n);
    buf_attr buf "value" (X.Node.string_value n)
  | X.Node.Pi -> buf_attr buf "name" (X.Node.name n)
  | _ -> ());
  (match X.Node.document_uri n with
  | Some u -> buf_attr buf "base-uri" u
  | None -> ());
  Buffer.add_char buf '>';
  (match X.Node.kind n with
  | X.Node.Element -> X.Serializer.node_to_buf buf n
  | X.Node.Document ->
    List.iter (X.Serializer.node_to_buf buf) (X.Node.children n)
  | X.Node.Text | X.Node.Comment | X.Node.Pi ->
    buf_text buf (X.Node.string_value n)
  | X.Node.Attribute -> ());
  Buffer.add_string buf "</copy>"

(* Fragment-based item reference. The fragid/nodeid attributes follow the
   paper's message format for fragments present in this message; the origin
   key handles session-cached nodes and back references. *)
let write_ref ep ~host ~frags buf n =
  let eff = effective_node n in
  let origin =
    match remote_origin ep ~host eff with
    | Some (rdid, ridx) -> Printf.sprintf "R:%d:%d" rdid ridx
    | None ->
      Printf.sprintf "L:%d:%d" eff.X.Node.doc.X.Doc.did (X.Node.index eff)
  in
  let fragid, nodeid =
    match remote_origin ep ~host eff with
    | Some _ -> (0, 0)
    | None -> (
      let did = eff.X.Node.doc.X.Doc.did and idx = X.Node.index eff in
      let rec find i = function
        | [] -> (0, 0)
        | f :: rest ->
          if fst f.fr_okey = did then
            match f.fr_nodeid idx with
            | Some nid -> (i, nid)
            | None -> find (i + 1) rest
          else find (i + 1) rest
      in
      find 1 frags)
  in
  if X.Node.is_attribute n then begin
    Buffer.add_string buf "<attr-ref";
    buf_attr buf "name" (X.Node.name n)
  end
  else Buffer.add_string buf "<node";
  buf_attr buf "o" origin;
  buf_attr buf "fragid" (string_of_int fragid);
  buf_attr buf "nodeid" (string_of_int nodeid);
  Buffer.add_string buf "/>"

let write_sequence ep ~host ~passing ~frags buf ?param (v : Value.t) =
  Buffer.add_string buf "<sequence";
  (match param with Some p -> buf_attr buf "param" p | None -> ());
  Buffer.add_char buf '>';
  List.iter
    (fun item ->
      match item with
      | Value.A a -> write_atom buf a
      | Value.N n -> (
        match passing with
        | By_value -> write_copy buf n
        | By_fragment | By_projection -> write_ref ep ~host ~frags buf n))
    v;
  Buffer.add_string buf "</sequence>"

(* ------------------------------------------------------------------ *)
(* Shredding (receiver side).                                          *)
(* ------------------------------------------------------------------ *)

let find_child n name =
  List.find_opt
    (fun c -> X.Node.kind c = X.Node.Element && X.Node.name c = name)
    (X.Node.children n)

let children_named n name =
  List.filter
    (fun c -> X.Node.kind c = X.Node.Element && X.Node.name c = name)
    (X.Node.children n)

let attr_of n name =
  List.find_map
    (fun a -> if X.Node.name a = name then Some (X.Node.string_value a) else None)
    (X.Node.attributes n)

let req_attr n name =
  match attr_of n name with
  | Some v -> v
  | None ->
    protocol_error "malformed XRPC message: missing attribute %s on <%s>"
      name (X.Node.name n)

(* An on-the-wire budget must be a finite non-negative float; anything
   else is ill-formed protocol content and answers with
   xrpc:protocol.malformed (never an exception, never silently ignored). *)
let budget_attr n name =
  match attr_of n name with
  | None -> None
  | Some v -> (
    match float_of_string_opt v with
    | Some s when s >= 0. && Float.is_finite s -> Some s
    | _ ->
      protocol_error "malformed XRPC message: bad %s %S on <%s>" name v
        (X.Node.name n))

(* The deadline attribute of a parsed request / batch / 2PC control
   element, if any. *)
let parse_deadline n = budget_attr n "deadline"

(* The retry-after suggestion on a parsed <env:Fault>, if any. *)
let parse_retry_after fault_node = budget_attr fault_node "retry-after"

(* Read an <env:Fault> element back into (code, reason). A fault whose
   own structure is broken is itself a protocol error. *)
let parse_fault fault_node =
  let child n name =
    match find_child n name with
    | Some c -> c
    | None -> protocol_error "fault envelope without <%s>" name
  in
  let code =
    fault_code_of_string
      (X.Node.string_value
         (child (child (child fault_node "env:Code") "env:Subcode")
            "env:Value"))
  in
  let reason =
    match find_child fault_node "env:Reason" with
    | None -> ""
    | Some r -> (
      match find_child r "env:Text" with
      | None -> ""
      | Some t -> X.Node.string_value t)
  in
  (code, reason)

(* Read a <txn-ack> element back into (txn, ack). *)
let parse_txn_ack n =
  (req_attr n "txn", txn_ack_of_string (req_attr n "state"))

(* A complete <forward> envelope (response position). *)
let write_forward ~doc ~owner ~epoch =
  envelope (forward_body ~doc ~owner ~epoch)

let int_attr n name =
  let v = req_attr n name in
  match int_of_string_opt v with
  | Some i -> i
  | None ->
    protocol_error "malformed XRPC message: bad %s %S on <%s>" name v
      (X.Node.name n)

(* Read a <forward> element back into (doc, owner, epoch). A redirect whose
   own structure is broken is a protocol error — the caller answers or
   raises a typed fault, never a leaked exception. *)
let parse_forward n =
  let doc = req_attr n "doc" and owner = req_attr n "owner" in
  let epoch = int_attr n "epoch" in
  if owner = "" then protocol_error "malformed <forward>: empty owner";
  (doc, owner, epoch)

(* A complete <catalog> envelope. *)
let write_catalog cat = envelope (catalog_body cat)

(* Read a <catalog> element back into a fresh Catalog.t. *)
let parse_catalog n =
  let epoch = int_attr n "epoch" in
  let entries =
    List.map
      (fun e ->
        let replicas =
          match attr_of e "replicas" with
          | None | Some "" -> []
          | Some s ->
            List.filter (fun r -> r <> "") (String.split_on_char ' ' s)
        in
        {
          Xd_topo.Catalog.doc = req_attr e "doc";
          owner = req_attr e "owner";
          replicas;
        })
      (children_named n "entry")
  in
  let members =
    List.map
      (fun m ->
        let up =
          match req_attr m "up" with
          | "true" -> true
          | "false" -> false
          | v -> protocol_error "malformed <member>: bad up %S" v
        in
        (req_attr m "peer", up))
      (children_named n "member")
  in
  List.iter
    (fun e ->
      if e.Xd_topo.Catalog.owner = "" || e.Xd_topo.Catalog.doc = "" then
        protocol_error "malformed <entry>: empty doc or owner")
    entries;
  Xd_topo.Catalog.of_parts ~epoch ~entries ~members

(* Copy the children of a parsed message node into a fresh document. *)
let copy_children_to_doc ?uri n =
  let b = X.Doc.Builder.create ?uri () in
  let rec go c =
    match X.Node.kind c with
    | X.Node.Element ->
      let attrs =
        List.map
          (fun a -> (X.Node.name a, X.Node.string_value a))
          (X.Node.attributes c)
      in
      X.Doc.Builder.start_element b (X.Node.name c) attrs;
      List.iter go (X.Node.children c);
      X.Doc.Builder.end_element b
    | X.Node.Text -> X.Doc.Builder.text b (X.Node.string_value c)
    | X.Node.Comment -> X.Doc.Builder.comment b (X.Node.string_value c)
    | X.Node.Pi -> X.Doc.Builder.pi b (X.Node.name c) (X.Node.string_value c)
    | X.Node.Document | X.Node.Attribute -> ()
  in
  List.iter go (X.Node.children n);
  X.Doc.Builder.finish b

(* The event shred fast path (Codec.event_parse) diverts fragment and
   copy subtrees into side documents while the message itself is being
   parsed, keyed by the pre-order index the host element occupies in
   the message document. A shredder handed such a table uses the
   prebuilt document instead of re-copying children node by node. *)
let prebuilt_doc prebuilt n =
  match prebuilt with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl (X.Node.index n)

(* Shred the <fragments> section at an endpoint, registering provenance and
   origin entries. *)
let shred_fragments ?prebuilt ep ~from_host fragments_node =
  match fragments_node with
  | None -> ()
  | Some fnode ->
    List.iter
      (fun frag ->
        let okey = req_attr frag "okey" in
        let rdid, ridx =
          match String.split_on_char ':' okey with
          | [ a; b ] -> (int_of_string a, int_of_string b)
          | _ -> protocol_error "malformed okey %S" okey
        in
        let uri = attr_of frag "base-uri" in
        let doc =
          match prebuilt_doc prebuilt frag with
          | Some d -> d
          | None -> copy_children_to_doc ?uri frag
        in
        let n_local = X.Doc.n_nodes doc in
        let omap =
          match attr_of frag "omap" with
          | Some m ->
            let parts =
              List.filter (fun s -> s <> "") (String.split_on_char ' ' m)
            in
            let arr = Array.make n_local (-1) in
            List.iteri
              (fun i o -> if i + 1 < n_local then arr.(i + 1) <- int_of_string o)
              parts;
            if ridx = 0 then arr.(0) <- 0;
            arr
          | None ->
            (* contiguous: local idx k (k>=1) <-> remote ridx + k - 1;
               local document node maps to remote document node only when
               the whole document was shipped (ridx = 0). *)
            Array.init n_local (fun k ->
                if k = 0 then (if ridx = 0 then 0 else -1)
                else if ridx = 0 then k
                else ridx + k - 1)
        in
        let base = base_for ep from_host in
        let did = base + ((rdid land 0x3fffff) lsl 22) + (ridx land 0x3fffff) in
        let doc = X.Store.add_with_did (Peer.store ep.self) doc did in
        Hashtbl.replace ep.foreign_docs doc.X.Doc.did
          { from_host; remote_did = rdid; omap };
        Array.iteri
          (fun local_idx remote_idx ->
            if remote_idx >= 0 then begin
              let key = (from_host, rdid, remote_idx) in
              if not (Hashtbl.mem ep.origin key) then
                Hashtbl.replace ep.origin key (X.Node.of_tree doc local_idx)
            end)
          omap)
      (children_named fnode "fragment")

(* Resolve one marshaled item at the receiver. *)
let shred_item ?prebuilt ep ~from_host item : Value.t =
  match X.Node.name item with
  | "atomic" ->
    let ty = req_attr item "type" in
    let s = X.Node.string_value item in
    let a =
      match ty with
      | "string" -> Value.String s
      | "integer" -> Value.Integer (int_of_string s)
      | "double" -> Value.Double (float_of_string s)
      | "boolean" -> Value.Boolean (s = "true")
      | _ -> Value.Untyped s
    in
    [ Value.A a ]
  | "copy" -> (
    let store = Peer.store ep.self in
    let uri = attr_of item "base-uri" in
    let content_doc () =
      match prebuilt_doc prebuilt item with
      | Some d -> d
      | None -> copy_children_to_doc ?uri item
    in
    match req_attr item "kind" with
    | "element" ->
      let doc = X.Store.add ~index_uri:false store (content_doc ()) in
      [ Value.N (X.Node.of_tree doc 1) ]
    | "document" ->
      let doc = X.Store.add ~index_uri:false store (content_doc ()) in
      [ Value.N (X.Node.doc_node doc) ]
    | "text" ->
      let s = X.Node.string_value item in
      if s = "" then [ Value.A (Value.Untyped "") ]
      else [ Value.N (Xd_lang.Construct.text store s) ]
    | "comment" ->
      let b = X.Doc.Builder.create () in
      X.Doc.Builder.comment b (X.Node.string_value item);
      let doc = X.Store.add store (X.Doc.Builder.finish b) in
      [ Value.N (X.Node.of_tree doc 1) ]
    | "pi" ->
      let b = X.Doc.Builder.create () in
      X.Doc.Builder.pi b (req_attr item "name") (X.Node.string_value item);
      let doc = X.Store.add store (X.Doc.Builder.finish b) in
      [ Value.N (X.Node.of_tree doc 1) ]
    | "attribute" ->
      [
        Value.N
          (Xd_lang.Construct.attribute store (req_attr item "name")
             (req_attr item "value"));
      ]
    | k -> protocol_error "malformed copy kind %S" k)
  | "node" | "attr-ref" -> (
    let o = req_attr item "o" in
    let node =
      match String.split_on_char ':' o with
      | [ "R"; did; idx ] -> (
        (* our own node, referenced back by the other side *)
        let did = int_of_string did and idx = int_of_string idx in
        match X.Store.find_did (Peer.store ep.self) did with
        | Some d when idx < X.Doc.n_nodes d -> X.Node.of_tree d idx
        | _ ->
          protocol_error "dangling remote origin reference %S" o)
      | [ "L"; did; idx ] -> (
        let did = int_of_string did and idx = int_of_string idx in
        match Hashtbl.find_opt ep.origin (from_host, did, idx) with
        | Some n -> n
        | None ->
          protocol_error "unresolved origin reference %S" o)
      | _ -> protocol_error "malformed origin %S" o
    in
    if X.Node.name item = "attr-ref" then begin
      let aname = req_attr item "name" in
      match
        List.find_opt (fun a -> X.Node.name a = aname) (X.Node.attributes node)
      with
      | Some a -> [ Value.N a ]
      | None ->
        protocol_error "attribute %s not found on shipped node"
          aname
    end
    else [ Value.N node ])
  | other ->
    protocol_error "unexpected item element <%s> in message" other

let shred_sequence ?prebuilt ep ~from_host seq_node : Value.t =
  List.concat_map
    (fun c ->
      match X.Node.kind c with
      | X.Node.Element -> shred_item ?prebuilt ep ~from_host c
      | _ -> [])
    (X.Node.children seq_node)
