(* Deterministic fault injection for the simulated wire.

   A fault specification is a list of rules consulted, in order, for every
   XRPC message the network carries (document fetches model a dumb
   replica/file server and are not subject to injection — see DESIGN.md,
   "Graceful degradation"). Each rule fires with a configured probability
   drawn from one seeded PRNG, so a (spec, seed) pair names exactly one
   fault schedule: the same query over the same data sees the same drops,
   duplicates, truncations and crashes on every run.

   The mini-language (also accepted by xdxq --fault-spec):

     spec  := rule (";" rule)*                 an empty spec = no faults
     rule  := [ PEER ":" ] kind [ "=" PARAM ] [ "@" PROB ] [ "#" LIMIT ]
              [ "%" SKIP ]
     kind  := drop       message never delivered (the caller times out)
            | dup        message delivered twice
            | truncate   message delivered with its tail cut off
            | delay      PARAM extra simulated seconds (default 0.5)
            | crash      target peer drops this and the next PARAM-1
                         messages addressed to it (default 4)
            | restart    like crash (default PARAM 1), and the target
                         peer loses all volatile transaction state —
                         its journal is replayed with presumed abort
            | down       target peer permanently drops messages

   A rule without a PEER prefix is network-wide (it matches whatever peer
   the message is addressed to). PROB is the per-message firing
   probability (default 1). LIMIT caps how many times the rule fires
   (default unlimited) — "drop@1#1" deterministically kills exactly the
   first message. SKIP arms the rule only after that many matching
   messages have passed — "peerA:restart%3#1" crashes peerA exactly at
   its 4th message, which is how the tests park a crash-restart at each
   individual 2PC step. *)

type kind =
  | Drop
  | Dup
  | Truncate
  | Delay of float
  | Crash of int
  | Restart of int
  | Down

type rule = {
  target : string option; (* None = any destination peer *)
  kind : kind;
  prob : float;
  limit : int option;
  skip : int;
}

type spec = rule list

type t = {
  rules : (rule * int ref * int ref) array;
      (* rule, firings so far, matching messages seen so far *)
  rng : Random.State.t;
  crashed : (string, int option) Hashtbl.t;
      (* peer -> messages still to drop; None = down forever *)
  mutable injected : int;
}

type outcome =
  | Pass
  | Drop_msg
  | Duplicate
  | Truncate_at of int (* deliver only this many leading bytes *)
  | Delay_by of float
  | Restart_peer (* dropped, and the destination's journal crash-restarts *)

(* ---------------- spec parsing ---------------------------------------- *)

let kind_of_string k param =
  let p default = match param with Some s -> float_of_string s | None -> default in
  let pi default = match param with Some s -> int_of_string s | None -> default in
  match k with
  | "drop" -> Ok Drop
  | "dup" -> Ok Dup
  | "truncate" -> Ok Truncate
  | "delay" -> Ok (Delay (p 0.5))
  | "crash" -> Ok (Crash (max 1 (pi 4)))
  | "restart" -> Ok (Restart (max 1 (pi 1)))
  | "down" -> Ok Down
  | _ -> Error (Printf.sprintf "unknown fault kind %S" k)

let parse_rule s =
  let s = String.trim s in
  let target, rest =
    match String.index_opt s ':' with
    | Some i ->
      (Some (String.sub s 0 i), String.sub s (i + 1) (String.length s - i - 1))
    | None -> (None, s)
  in
  let rest, skip =
    match String.index_opt rest '%' with
    | Some i ->
      ( String.sub rest 0 i,
        Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, None)
  in
  let rest, limit =
    match String.index_opt rest '#' with
    | Some i ->
      ( String.sub rest 0 i,
        Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, None)
  in
  let rest, prob =
    match String.index_opt rest '@' with
    | Some i ->
      ( String.sub rest 0 i,
        Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, None)
  in
  let rest, param =
    match String.index_opt rest '=' with
    | Some i ->
      ( String.sub rest 0 i,
        Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, None)
  in
  match kind_of_string rest param with
  | exception _ -> Error (Printf.sprintf "bad fault parameter in %S" s)
  | Error e -> Error e
  | Ok kind -> (
    match
      ( (match prob with Some p -> float_of_string p | None -> 1.),
        (match limit with Some l -> Some (int_of_string l) | None -> None),
        match skip with Some k -> int_of_string k | None -> 0 )
    with
    | exception _ ->
      Error (Printf.sprintf "bad probability, limit or skip in %S" s)
    | prob, _, _ when not (prob >= 0. && prob <= 1.) ->
      Error (Printf.sprintf "probability out of [0,1] in %S" s)
    | _, _, skip when skip < 0 ->
      Error (Printf.sprintf "negative skip in %S" s)
    | prob, limit, skip -> Ok { target; kind; prob; limit; skip })

let parse s =
  let parts =
    List.filter
      (fun p -> String.trim p <> "")
      (String.split_on_char ';' s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match parse_rule p with
      | Ok r -> go (r :: acc) rest
      | Error e -> Error e)
  in
  go [] parts

let rule_to_string r =
  let kind, param =
    match r.kind with
    | Drop -> ("drop", None)
    | Dup -> ("dup", None)
    | Truncate -> ("truncate", None)
    | Delay s -> ("delay", Some (Printf.sprintf "%g" s))
    | Crash k -> ("crash", Some (string_of_int k))
    | Restart k -> ("restart", Some (string_of_int k))
    | Down -> ("down", None)
  in
  String.concat ""
    [
      (match r.target with Some t -> t ^ ":" | None -> "");
      kind;
      (match param with Some p -> "=" ^ p | None -> "");
      (if r.prob < 1. then Printf.sprintf "@%g" r.prob else "");
      (match r.limit with Some l -> "#" ^ string_of_int l | None -> "");
      (if r.skip > 0 then "%" ^ string_of_int r.skip else "");
    ]

let spec_to_string spec = String.concat ";" (List.map rule_to_string spec)

(* ---------------- the schedule ---------------------------------------- *)

let create ?(seed = 0) spec =
  {
    rules = Array.of_list (List.map (fun r -> (r, ref 0, ref 0)) spec);
    rng = Random.State.make [| seed; 0x5eed |];
    crashed = Hashtbl.create 4;
    injected = 0;
  }

let none = create []
let enabled t = Array.length t.rules > 0
let injected t = t.injected

let crash t dst k =
  Hashtbl.replace t.crashed dst k

(* A message addressed to a crashed peer is dropped; a bounded crash
   recovers after its k messages were consumed. *)
let consume_crash t dst =
  match Hashtbl.find_opt t.crashed dst with
  | None -> false
  | Some None -> true
  | Some (Some k) ->
    if k <= 1 then Hashtbl.remove t.crashed dst
    else Hashtbl.replace t.crashed dst (Some (k - 1));
    true

let decide t ~dst ~len =
  if not (enabled t) then Pass
  else if consume_crash t dst then begin
    t.injected <- t.injected + 1;
    Drop_msg
  end
  else begin
    let fired = ref Pass in
    Array.iter
      (fun (r, count, seen) ->
        if !fired = Pass then begin
          let matches = match r.target with Some p -> p = dst | None -> true in
          if matches then begin
            incr seen;
            let applicable =
              !seen > r.skip
              && match r.limit with Some l -> !count < l | None -> true
            in
            if applicable && Random.State.float t.rng 1. < r.prob then begin
              incr count;
              t.injected <- t.injected + 1;
              fired :=
                (match r.kind with
                | Drop -> Drop_msg
                | Dup -> Duplicate
                | Truncate ->
                  (* cut at least one byte, keep at least one *)
                  if len < 2 then Drop_msg
                  else Truncate_at (1 + Random.State.int t.rng (len - 1))
                | Delay s -> Delay_by s
                | Crash k ->
                  (* this message is the first of the k dropped ones *)
                  if k > 1 then crash t dst (Some (k - 1));
                  Drop_msg
                | Restart k ->
                  if k > 1 then crash t dst (Some (k - 1));
                  Restart_peer
                | Down ->
                  crash t dst None;
                  Drop_msg)
            end
          end
        end)
      t.rules;
    !fired
  end
