(** Compiled per-call-site message codecs, generated from
    {!Xd_shape.Shape} wire-shape descriptors (PROTOCOL.md, "Compiled
    codecs").

    Every compiled path is a strict specialization of the generic one:
    it either produces/accepts byte-identical wire content or returns
    [None] and the caller falls back (counted in [codec.bailouts]). *)

type t

val compile :
  passing:Message.passing ->
  caller:string ->
  Xd_shape.Shape.result ->
  Xd_lang.Ast.query ->
  t
(** Generate encoder/decoder tables for every descriptor that is
    {!Xd_shape.Shape.encoder_applicable} / [decoder_applicable]. *)

val descriptors : t -> Xd_shape.Shape.descriptor list
(** The descriptors codegen consumed — handed to the verifier, which
    re-derives them independently and rejects disagreement. *)

(** {2 Compiled request encoders} *)

type compiled_call

val find_call : t -> int -> compiled_call option
(** By call-site key (the remote body's vertex id). *)

val encode_request :
  compiled_call ->
  caller:string ->
  ?req_id:string ->
  ?txn:string ->
  ?epoch:int ->
  ?deadline:float ->
  (Xd_lang.Ast.var * Xd_lang.Value.t) list ->
  string option
(** Emit the full request envelope from precomputed constant segments,
    or [None] on any runtime shape mismatch (a node item in a supposedly
    atomic parameter, argument-list drift, wrong session). [deadline] is
    the already-network-adjusted budget value the generic writer would
    stamp. *)

(** {2 Compiled response decoder} *)

type compiled_resp

val find_resp : t -> int -> compiled_resp option

val decode_response : compiled_resp -> string -> Xd_lang.Value.t option
(** Exact prefix/suffix match around a flat scan of [<atomic>] items.
    Accepts a strict subset of the generic parser's language and agrees
    with it on every accepted string; faults, forwards, txn attributes
    and trace headers miss the prefix and return [None]. *)

(** {2 Event shred fast path} *)

val event_parse : string -> Xd_xml.Doc.t * (int, Xd_xml.Doc.t) Hashtbl.t
(** Parse a message with the streaming {!Xd_xml.Event} core, diverting
    fragment/copy subtree content straight into {!Xd_xml.Doc.Direct}
    builders as the events arrive. Returns the message document (with
    the diverted elements left empty) and the prebuilt content documents
    keyed by their host element's pre-order index — the [?prebuilt]
    argument of {!Message.shred_fragments} / [shred_sequence]. *)
