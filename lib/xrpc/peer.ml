(* A peer: a named XQuery engine owning a document store. Peers host the
   documents addressed as xrpc://<name>/<doc> and execute the function
   bodies shipped to them. The peer's name is also the key every
   cross-cutting layer files it under: the fault schedule, the topology
   catalog, and the overload model's admission slots and circuit
   breakers are all per-peer-name state held elsewhere — a peer object
   itself stays just engine + store. *)

module X = Xd_xml

type t = { name : string; store : X.Store.t }

let create name = { name; store = X.Store.create () }
let name t = t.name
let store t = t.store

let load_xml t ~doc_name xml =
  X.Parser.parse ~store:t.store ~uri:doc_name xml

let load_tree t ~doc_name tree = X.Store.of_tree t.store ~uri:doc_name tree

let find_doc t doc_name = X.Store.find_uri t.store doc_name

let xrpc_uri t doc_name = Printf.sprintf "xrpc://%s/%s" t.name doc_name
