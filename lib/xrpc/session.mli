(** A distributed execution session.

    Installs the execute-at and fn:doc hooks into the evaluator, builds
    and dispatches the XRPC messages, and keeps the per-session endpoint
    state that realizes bulk-RPC-style fragment deduplication across the
    calls of one query execution. The whole exchange exercises real code
    paths — requests and responses are serialized to XML text, accounted
    on the simulated wire, and parsed back on the other side. *)

type recorded = {
  dir : [ `Request of string | `Response of string ];
  text : string;
}

type t

val create :
  ?record:recorded list ref -> ?bulk:bool ->
  ?schema:(string -> string list) -> ?depth:int -> ?timeout_s:float ->
  ?retries:int -> ?dedup_cap:int -> ?schedule:(int * int list) list ->
  ?deadline:float -> ?retry_budget:int ref -> ?codec:Codec.t ->
  ?tracer:Xd_obs.Trace.t -> Network.t -> Peer.t -> Message.passing -> t
(** A session for one querying peer. [record] captures every message (for
    tests and demos); [bulk] (default true) enables session-wide fragment
    caching — the wire behaviour of the paper's bulk RPC; disabling it is
    the ablation baseline where every call re-ships its nodes; [schema]
    makes by-projection messages schema-aware (mandatory children of kept
    elements are preserved); [depth] guards against runaway nested calls.

    [timeout_s] (default 1.0) is the per-call timeout on the simulated
    clock: a call whose request or response is lost waits it out, then
    retries; [retries] (default 2) bounds the re-sends, with
    deterministic exponential backoff also charged to the simulated
    clock. Retried requests carry a request-id (only on a faulty wire —
    fault-free traffic is byte-identical to a build without the fault
    layer) and servers replay cached responses, so update-carrying calls
    apply at most once. When a peer stays unreachable and the body is
    provably read-only, the call degrades to data shipping: the
    documents are fetched and the body evaluates locally. Otherwise the
    caller sees a typed {!Message.Xrpc_timeout} or {!Message.Xrpc_fault}
    — never a leaked native exception.

    [dedup_cap] (default 256) bounds the server-side response cache that
    backs exactly-once replay of request-ids; the oldest entries are
    evicted FIFO and counted in {!Stats}.

    [deadline], when given, is the query's end-to-end budget in
    simulated seconds (PROTOCOL.md, "Deadlines & overload"): every
    outgoing message carries the remaining budget as a fixed-width
    [deadline] attribute, pre-subtracting its own wire time, so the
    receiver's budget equals the sender's at the moment of receipt.
    Callees refuse work the budget can no longer cover with a typed
    non-retryable [xrpc:deadline.exceeded] fault, and the caller stops
    (re)sending once the budget is gone. Absent (default), no deadline
    attribute is ever stamped and the wire is byte-identical to a build
    without the feature.

    [retry_budget], when given, is a shared pool of retries for the
    whole plan execution: every session of the fan-out (this one and all
    its server sessions) draws from the same counter, and once it is
    spent no call retries again — the last failure surfaces through the
    usual degradation ladder. Absent, each call retries up to [retries]
    independently.

    [schedule] is the effect analysis's overlap schedule (from
    {!Xd_effects.Effects.schedule}, passed structurally to keep the
    layering acyclic): [(anchor, members)] pairs naming a Seq/Let/For
    vertex and the provably non-interfering read-only [execute at] calls
    under it. At each anchor the member calls run as one overlap group —
    the simulated clock bills the group by its longest member (critical
    path), and on a fault-free wire same-peer members coalesce into one
    [<batch>] envelope per peer and round trip. On a faulty wire
    batching is disabled and the per-member messages stay byte-identical
    to the sequential run, so fault schedules replay exactly; results
    and update lists are identical either way. An empty schedule
    (default) is plain sequential evaluation.

    [codec], when given, installs the compiled per-call-site codecs from
    the wire-shape analysis (PROTOCOL.md, "Compiled codecs"): requests
    whose parameters are provably atomic are emitted by specialized
    encoders, provably-atomic responses are read by specialized decoders,
    and every incoming message is parsed by the streaming event shredder
    that diverts fragment/copy content straight into pre-order stores.
    All three are strict specializations — the wire is byte-identical to
    the generic paths, any runtime shape mismatch falls back (counted in
    [codec.bailouts]), and the handle is shared with every server session
    of the plan. Absent (default), generic paths only.

    [tracer], when given, records hierarchical spans for every call,
    attempt, (de)serialization, evaluation, fallback and 2PC exchange of
    the session (and, via the wire-propagated [<trace>] header, of every
    peer it talks to). Tracing is observationally transparent: results,
    {!Stats} and any seeded fault schedule are unchanged. *)

val recorded : t -> recorded list option

val backoff_s : key:string -> attempt:int -> float
(** Deterministic jittered exponential backoff charged before re-send
    [attempt] (attempt 2 is the first retry): the base
    [0.05 * 2^(attempt-2)] seconds stretched by a factor in [1, 2)
    derived from an FNV-1a hash of ["key#attempt"]. The key is
    ["<request-id>@<host>"] when an id is assigned (faulty wire) — the
    hop is part of the key, so the same logical request re-driven at a
    different peer after a forward/failover draws fresh jitter instead
    of replaying the first hop's schedule — else just the host.
    Concurrent retries of different requests decorrelate while any one
    (request, hop)'s schedule replays exactly. Exposed for the pinning
    unit test. *)

val set_current_span : t -> Xd_obs.Trace.span option -> unit
(** Set the ambient span new spans parent under — the executor installs
    its per-query root span here. [None] detaches (spans started while
    detached begin fresh traces). *)

val server_session : t -> string -> t
(** The server-side session for calls to the given host (created lazily;
    holds the server's endpoint state and supports nested outgoing
    calls). *)

val resolve_doc : t -> Xd_lang.Env.t -> string -> Xd_xml.Doc.t
(** fn:doc semantics: local names resolve in the peer's store; xrpc://
    URIs on other hosts are fetched whole (data shipping) with per-session
    caching; xrpc:// URIs naming this peer resolve locally. *)

val handle_request : t -> client_name:string -> string -> string
(** Server side: parse a request, shred its fragments, evaluate the body,
    serialize the response. Exposed for protocol tests. *)

val execute_at :
  t -> Xd_lang.Env.t -> Xd_lang.Ast.execute_at -> host:string ->
  args:(Xd_lang.Ast.var * Xd_lang.Value.t) list -> Xd_lang.Value.t
(** Client side of one call. An empty host, or this peer's own name,
    executes locally with full fidelity. *)

val env_for : t -> funcs:Xd_lang.Ast.func list -> Xd_lang.Env.t
val execute : t -> Xd_lang.Ast.query -> Xd_lang.Value.t

val execute_txn : t -> Xd_lang.Ast.query -> Xd_lang.Value.t
(** Like {!execute}, but update-carrying remote calls stage their pending
    update lists at the callee instead of applying them, and the whole
    query commits atomically through two-phase commit when evaluation
    completes: the coordinator journals its decision, then drives
    prepare/commit (or abort) at every participant. All-or-nothing under
    any fault schedule: after {!recover}, either every peer applied its
    share exactly once or none did. A query that touches no remote
    participant skips 2PC entirely and is wire-identical to {!execute}. *)

val recover : t -> unit
(** Coordinator-side crash recovery: re-drive every transaction this
    peer's journal shows as begun but not resolved — journaled decisions
    are pushed to commit at all participants, undecided transactions are
    aborted (presumed abort). Idempotent. *)
