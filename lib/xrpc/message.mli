(** The XRPC wire protocol: SOAP-style XML messages in the three passing
    semantics of the paper (Figs. 1, 4, 5).

    - {e pass-by-value}: every node item is an isolated deep copy
      ([<copy>]); the receiver shreds each into a fresh document —
      exactly Problems 1-4.
    - {e pass-by-fragment}: node data travels once, in a [<fragments>]
      preamble holding the maximal subtrees in document order; items are
      [(fragid, nodeid)] references. Every reference additionally carries
      an origin key and both endpoints keep per-session origin tables, so
      a node received earlier in the session is referenced back instead of
      re-copied — the paper's single-message dedup generalized to the bulk
      session, preserving identity across round trips.
    - {e pass-by-projection}: fragments contain the runtime projection
      (Algorithm 1) of the used/returned node sets from the relative
      projection paths; requests carry a [<projection-paths>] element
      telling the callee how to project the response.

    Shredded fragments receive document ids derived from their origin
    keys, so document order among fragments of one sender is preserved at
    the receiver. *)

type passing = By_value | By_fragment | By_projection

val passing_to_string : passing -> string
val passing_of_string : string -> passing

(** {2 Faults} *)

exception Protocol_error of string
(** A structurally ill-formed message: the XML parsed, but the protocol
    content is wrong (missing elements/attributes, bad references,
    unknown enumeration values). Servers answer these with a
    non-retryable [xrpc:protocol.malformed] fault. *)

val protocol_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** The fault-code taxonomy (PROTOCOL.md, "Faults"). Transport-class
    faults are retryable — the same request may succeed on a clean wire;
    the others are deterministic. *)
type fault_code =
  | Transport_corrupt
  | Transport_timeout
  | Protocol_malformed
  | App_dynamic
  | App_type
  | Txn_aborted  (** the distributed transaction was aborted by 2PC *)
  | Topo_unroutable
      (** forwarding could not reach an owner: hop limit exhausted or a
          redirect loop (PROTOCOL.md, "Topology & forwarding") *)
  | Server_overloaded
      (** the peer's admission queue is full; retryable, with a
          server-suggested retry-after delay (PROTOCOL.md, "Deadlines &
          overload") *)
  | Deadline_exceeded
      (** the remaining deadline budget cannot cover the call's minimum
          service time; never retryable — budgets only shrink *)

exception
  Xrpc_fault of { host : string; code : fault_code; reason : string }
(** A parsed [<env:Fault>] response from [host], re-raised client-side. *)

exception Xrpc_timeout of { host : string; attempts : int }
(** No response from [host] within the per-call timeout, after
    [attempts] total sends. *)

exception Xrpc_forward of { doc : string; owner : string; epoch : int }
(** A parsed [<forward>] redirect answer: the callee no longer owns
    [doc]; re-resolve and retry at [owner]. Raised by the response
    shredder, consumed by {!Session}'s forwarding loop. *)

val retryable : fault_code -> bool
val fault_code_to_string : fault_code -> string

val fault_code_of_string : string -> fault_code
(** Raises {!Protocol_error} on an unknown code. *)

val envelope : string -> string
(** Wrap body content in the SOAP
    [<env:Envelope>]/[<env:Body>] scaffolding shared by every message. *)

val fault_body :
  ?retry_after:float -> code:fault_code -> reason:string -> unit -> string
(** Just the [<env:Fault>] element — embedded per-call inside batch
    responses. [retry_after] stamps the fixed-width server backoff
    suggestion (overload faults only). *)

val write_fault :
  ?retry_after:float -> code:fault_code -> reason:string -> unit -> string
(** A complete [<env:Fault>] response envelope. *)

(** {2 Transaction control} (PROTOCOL.md, "Transactions")

    2PC control messages are tiny dedicated envelopes — the coordinator
    sends [<prepare|commit|abort txn="T"/>], the participant acks with
    [<txn-ack txn="T" state="…"/>]. They are idempotent by construction
    and carry no request-id. *)

type txn_action = Prepare | Commit | Abort

val txn_action_to_string : txn_action -> string

type txn_ack = Ack_prepared | Ack_committed | Ack_aborted

val txn_ack_to_string : txn_ack -> string
val txn_ack_of_string : string -> txn_ack
val write_txn_control :
  ?epoch:int ->
  ?deadline:float ->
  action:txn_action ->
  txn:string ->
  unit ->
  string
(** [epoch] rides only on [<prepare>] under dynamic topology: a
    participant whose catalog epoch differs votes abort. [deadline]
    rides 2PC control only when the query has a budget. Absent both =
    static build, byte-identical wire. *)

val write_txn_ack : txn:string -> ack:txn_ack -> string

(** {2 Topology envelopes} (PROTOCOL.md, "Topology & forwarding") *)

val forward_body : doc:string -> owner:string -> epoch:int -> string
(** Just the [<forward doc owner epoch>] element (response position):
    the answering peer no longer owns [doc]. *)

val write_forward : doc:string -> owner:string -> epoch:int -> string

val parse_forward : Xd_xml.Node.t -> string * string * int
(** Read a [<forward>] element back into (doc, owner, epoch). Raises
    {!Protocol_error} on missing attributes, a bad epoch or an empty
    owner — malformed redirects become typed faults, never leaked
    exceptions. *)

val catalog_body : Xd_topo.Catalog.t -> string
val write_catalog : Xd_topo.Catalog.t -> string

val parse_catalog : Xd_xml.Node.t -> Xd_topo.Catalog.t
(** Read a [<catalog>] element back into a fresh catalog. Raises
    {!Protocol_error} on malformed entries/members. *)

val write_catalog_ack : epoch:int -> string
(** The [<catalog-ack epoch>] envelope a peer answers a catalog push
    with. *)

(** {2 Tracing header}

    Requests (and 2PC control messages) may carry an optional [<trace>]
    element as the first child of [<env:Body>], linking server-side
    spans under the caller's attempt span. The header is telemetry, not
    protocol: it is excluded from wire accounting ({!Network.send}
    [~meta]) and a header that cannot be decoded is simply ignored. *)

val trace_header : trace_id:string -> span_id:string -> string
(** [<trace trace-id=".." span-id=".."/>]; ids are 1–32 lowercase hex
    chars ({!Xd_obs.Trace.valid_id}). *)

val inject_trace_header : string -> header:string -> string * int * int
(** [inject_trace_header text ~header] inserts [header] right after
    [<env:Body>] and returns [(text', at, len)] — the header's byte
    range for {!Network.send}'s [~meta]. Text without an envelope body
    is returned unmodified (with a zero range). *)

val peek_trace_header : string -> (string * string) option
(** Textually decode a message's [(trace_id, span_id)]. [None] when the
    header is absent or malformed (bad hex ids, missing attributes,
    truncated) — such calls proceed untraced, never faulted. *)

val parse_txn_ack : Xd_xml.Node.t -> string * txn_ack
(** Read a [<txn-ack>] element back into (txn, ack). *)

val parse_fault : Xd_xml.Node.t -> fault_code * string
(** Read an [<env:Fault>] element back into (code, reason). *)

(** {2 Deadlines & overload} (PROTOCOL.md, "Deadlines & overload")

    Deadline and retry-after budgets ride the wire as fixed-width
    attributes: deterministic byte cost, re-stampable in place per retry
    attempt. Like the [<trace>] header they are invisible to the fault
    schedule — installing a deadline must not shift which messages an
    existing fault spec hits — but unlike [<trace>] they {e are} billed:
    the budget is real protocol payload. *)

val deadline_value : float -> string
(** ["%015.6f"] of the budget in simulated seconds, clamped at 0. *)

val retry_after_value : float -> string
(** ["%08.4f"] of the suggested delay, clamped at 0. *)

val buf_deadline : Buffer.t -> float -> unit
(** Append [ deadline="…"] (fixed width) to a message under
    construction. *)

val patch_deadline : string -> remaining:float -> string * (int * int) option
(** Re-stamp the message's (first) deadline attribute with the budget
    remaining now; returns the attribute's byte range for
    {!Network.send}'s [~hidden]. Identity on messages without one. *)

val overload_ranges : string -> (int * int) list
(** Byte ranges of every fixed-width deadline / retry-after attribute in
    the message, sorted by position — the fault schedule's blind spots.
    Only consulted when the overload layer is active. *)

val parse_deadline : Xd_xml.Node.t -> float option
(** The [deadline] attribute of a parsed request / batch / 2PC control
    element. Raises {!Protocol_error} on a malformed or negative value —
    typed [xrpc:protocol.malformed] faults, never silent ignores. *)

val parse_retry_after : Xd_xml.Node.t -> float option
(** The [retry-after] suggestion on a parsed [<env:Fault>]. Raises
    {!Protocol_error} on a malformed or negative value. *)

type foreign = { from_host : string; remote_did : int; omap : int array }
(** Provenance of a document shredded from a remote fragment:
    [omap.(local_idx) = remote original tree index]. *)

type endpoint = {
  self : Peer.t;
  foreign_docs : (int, foreign) Hashtbl.t;
  origin : (string * int * int, Xd_xml.Node.t) Hashtbl.t;
  shipped : (string, (int, Set.Make(Int).t ref) Hashtbl.t) Hashtbl.t;
  host_base : (string, int) Hashtbl.t;
  mutable next_base : int;
}
(** Per-session per-peer marshaling state. *)

val make_endpoint : Peer.t -> endpoint

val remote_origin :
  endpoint -> host:string -> Xd_xml.Node.t -> (int * int) option
(** If the node was shredded from [host]'s data: its original identity
    there. Such nodes are referenced back, never re-shipped. *)

(** {2 Writer} *)

val buf_attr : Buffer.t -> string -> string -> unit
val buf_text : Buffer.t -> string -> unit
val effective_node : Xd_xml.Node.t -> Xd_xml.Node.t
(** Attributes travel with their owner element. *)

type frag = {
  fr_okey : int * int;
  fr_base_uri : string option;
  fr_omap : int list option;
  fr_content : Buffer.t -> unit;
  fr_nodeid : int -> int option;
}

val value_nodes : Xd_lang.Value.t list -> Xd_xml.Node.t list

val plan_by_fragment :
  endpoint -> host:string -> Xd_xml.Node.t list -> frag list
(** Maximal not-yet-shipped subtrees, registering session coverage. *)

val plan_by_projection :
  ?schema:(string -> string list) ->
  endpoint ->
  host:string ->
  used:Xd_xml.Node.t list ->
  returned:Xd_xml.Node.t list ->
  frag list
(** Per-document runtime projections of the given node sets. A returned
    attribute makes its owner merely used — attributes always travel with
    their element. *)

val write_fragments : Buffer.t -> frag list -> unit
val write_atom : Buffer.t -> Xd_lang.Value.atom -> unit
val write_copy : Buffer.t -> Xd_xml.Node.t -> unit

val write_ref :
  endpoint -> host:string -> frags:frag list -> Buffer.t -> Xd_xml.Node.t ->
  unit

val write_sequence :
  endpoint ->
  host:string ->
  passing:passing ->
  frags:frag list ->
  Buffer.t ->
  ?param:string ->
  Xd_lang.Value.t ->
  unit

(** {2 Reader (shredding)} *)

val find_child : Xd_xml.Node.t -> string -> Xd_xml.Node.t option
val children_named : Xd_xml.Node.t -> string -> Xd_xml.Node.t list
val attr_of : Xd_xml.Node.t -> string -> string option
val req_attr : Xd_xml.Node.t -> string -> string
val copy_children_to_doc : ?uri:string -> Xd_xml.Node.t -> Xd_xml.Doc.t

val shred_fragments :
  ?prebuilt:(int, Xd_xml.Doc.t) Hashtbl.t ->
  endpoint -> from_host:string -> Xd_xml.Node.t option -> unit
(** Parse a [<fragments>] section into fresh documents with origin-derived
    ids, registering provenance and origin entries. [prebuilt] (from
    [Codec.event_parse]) maps a fragment/copy element's pre-order index
    in the message document to its content, already shredded during the
    parse — when present it replaces the node-by-node child copy. *)

val shred_item :
  ?prebuilt:(int, Xd_xml.Doc.t) Hashtbl.t ->
  endpoint -> from_host:string -> Xd_xml.Node.t -> Xd_lang.Value.t

val shred_sequence :
  ?prebuilt:(int, Xd_xml.Doc.t) Hashtbl.t ->
  endpoint -> from_host:string -> Xd_xml.Node.t -> Xd_lang.Value.t
