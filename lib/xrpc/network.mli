(** The simulated network: a registry of peers plus a cost model. Messages
    are real XML strings produced and parsed by the peers; only the wire
    is simulated, charging latency + bytes/bandwidth per message. Defaults
    model the paper's testbed (1 Gb/s LAN, 0.1 ms).

    An optional {!Fault} layer decides the fate of every XRPC message.
    With an empty spec it is bypassed entirely — wire traffic is
    byte-identical to a fault-free build. Document fetches (data
    shipping) are never fault-injected: they model a dumb replica server
    that stays reachable when a peer's query endpoint crashes. *)

type t = {
  peers : (string, Peer.t) Hashtbl.t;
  bandwidth_bytes_per_s : float;
  latency_s : float;
  stats : Stats.t;
  mutable fault : Fault.t;
  journal_dir : string option;
  journals : (string, Journal.t) Hashtbl.t;
  mutable catalog : Xd_topo.Catalog.t option;
  mutable churn : Xd_topo.Churn.t;
  mutable sent : int;  (** messages put on the wire; keys churn schedules *)
  mutable overload : Overload.t option;
      (** bounded-capacity admission model, when installed *)
}

val create :
  ?bandwidth_bytes_per_s:float -> ?latency_s:float -> ?fault:Fault.t ->
  ?journal_dir:string -> unit -> t
(** With [journal_dir], peer journals are file-backed at
    [<journal_dir>/<peer>.journal] and survive the process. *)

val faulty : t -> bool
(** Whether a non-empty fault schedule is installed. *)

val set_catalog : t -> Xd_topo.Catalog.t -> unit
(** Install the peer catalog (the authoritative replicated registry). *)

val set_churn : t -> Xd_topo.Churn.t -> unit
(** Install a scripted churn schedule; events fire on wire-message counts
    (see {!Xd_topo.Churn}) and mutate the installed catalog. *)

val topo_active : t -> bool
(** Dynamic topology is in force: a non-trivial catalog is installed.
    False for an absent or empty catalog — in that case every session
    behavior is byte-identical to the static build. *)

val set_overload : t -> Overload.t -> unit
(** Install the bounded-capacity admission model
    ([--peer-capacity]/[--queue-cap]/[--service-time]). *)

val overload_active : t -> bool
(** Whether the admission layer is installed. Without it no queue or
    breaker arithmetic runs and the wire stays byte-identical to the
    unprotected build. *)

val wire_s : t -> int -> float
(** Pure wire time of a message of that many bytes (latency +
    bytes/bandwidth) — what sending it will charge the simulated clock.
    Used to pre-subtract a message's own transmission from the deadline
    budget it carries. *)

val heal : t -> unit
(** Remove the fault layer: the outage is over. Crash-restarted peers keep
    their (replayed) journals; subsequent messages are all delivered. *)

val journal : t -> string -> Journal.t
(** The named peer's transaction journal (lazily created; file-backed when
    the network has a journal directory). *)

val add_peer : t -> Peer.t -> unit
val new_peer : t -> string -> Peer.t
val find_peer : t -> string -> Peer.t
val transfer : ?kind:[ `Message | `Document ] -> t -> int -> unit

type delivery = Delivered of { text : string; duplicated : bool } | Dropped

val send :
  ?meta:int * int -> ?hidden:(int * int) list -> t -> dst:string -> string ->
  delivery
(** Put one XRPC message on the wire towards peer [dst]. The sender
    always pays for the transmission; the fault layer decides what
    arrives: the full text, a truncated prefix, two copies
    ([duplicated]), or nothing ([Dropped] — the caller's timeout
    machinery takes over).

    [meta:(at, len)] marks a telemetry substring of the text (the
    injected [<trace>] header, [len] bytes at offset [at]). Telemetry
    rides for free: billed bytes, fault decisions and truncation offsets
    are computed as if it were absent, so tracing cannot perturb
    accounting or a seeded fault schedule.

    [hidden] lists further sorted disjoint ranges — the fixed-width
    deadline / retry-after attributes — that {e are} billed but are
    likewise invisible to the fault layer ({!Message.overload_ranges}),
    so installing deadlines cannot perturb a seeded fault schedule
    either. *)
