(** The simulated network: a registry of peers plus a cost model. Messages
    are real XML strings produced and parsed by the peers; only the wire
    is simulated, charging latency + bytes/bandwidth per message. Defaults
    model the paper's testbed (1 Gb/s LAN, 0.1 ms). *)

type t = {
  peers : (string, Peer.t) Hashtbl.t;
  bandwidth_bytes_per_s : float;
  latency_s : float;
  stats : Stats.t;
}

val create : ?bandwidth_bytes_per_s:float -> ?latency_s:float -> unit -> t
val add_peer : t -> Peer.t -> unit
val new_peer : t -> string -> Peer.t
val find_peer : t -> string -> Peer.t
val transfer : ?kind:[ `Message | `Document ] -> t -> int -> unit
