(* xdxq — run an XQuery over simulated XRPC peers under a chosen
   distribution strategy.

     xdxq [--doc HOST/NAME=FILE]... [--strategy STRAT] [--explain] QUERY

   QUERY is a file name, or a literal query with --query. Documents are
   loaded onto named peers; the query addresses them as
   doc("xrpc://HOST/NAME"). Documents for the special host "client" are
   local to the querying peer and addressed as doc("NAME"). *)

open Cmdliner

let strategy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "data-shipping" | "ds" -> Ok (`Fixed Xd_core.Strategy.Data_shipping)
    | "by-value" | "value" -> Ok (`Fixed Xd_core.Strategy.By_value)
    | "by-fragment" | "fragment" -> Ok (`Fixed Xd_core.Strategy.By_fragment)
    | "by-projection" | "projection" ->
      Ok (`Fixed Xd_core.Strategy.By_projection)
    | "auto" -> Ok `Auto
    | _ -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt = function
    | `Fixed s -> Format.pp_print_string fmt (Xd_core.Strategy.to_string s)
    | `Auto -> Format.pp_print_string fmt "auto"
  in
  Arg.conv (parse, print)

let docs_arg =
  let doc = "Load FILE onto peer HOST as document NAME (HOST/NAME=FILE)." in
  Arg.(value & opt_all string [] & info [ "doc"; "d" ] ~docv:"HOST/NAME=FILE" ~doc)

let strategy_arg =
  let doc =
    "Distribution strategy: data-shipping, by-value, by-fragment, \
     by-projection, or auto (pick by the cost model)."
  in
  Arg.(
    value
    & opt strategy_conv (`Fixed Xd_core.Strategy.By_projection)
    & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc)

let explain_arg =
  let doc = "Print the decomposed plan before executing." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let stats_arg =
  let doc = "Print transfer and timing statistics after executing." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let code_motion_arg =
  let doc = "Apply distributed code motion." in
  Arg.(value & flag & info [ "code-motion" ] ~doc)

let query_string_arg =
  let doc = "Give the query inline instead of in a file." in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"QUERY" ~doc)

let query_file_arg =
  let doc = "Query file." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_doc_spec s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad --doc %S (expected HOST/NAME=FILE)" s)
  | Some eq -> (
    let target = String.sub s 0 eq in
    let file = String.sub s (eq + 1) (String.length s - eq - 1) in
    match String.index_opt target '/' with
    | None -> Error (Printf.sprintf "bad --doc %S (expected HOST/NAME=FILE)" s)
    | Some sl ->
      Ok
        ( String.sub target 0 sl,
          String.sub target (sl + 1) (String.length target - sl - 1),
          file ))

let run docs strategy explain stats code_motion query_string query_file =
  let query_src =
    match (query_string, query_file) with
    | Some q, _ -> Ok q
    | None, Some f -> Ok (read_file f)
    | None, None -> Error "no query given (positional FILE or --query)"
  in
  match query_src with
  | Error e ->
    prerr_endline e;
    1
  | Ok src -> (
    let net = Xd_xrpc.Network.create () in
    let client = Xd_xrpc.Network.new_peer net "client" in
    let load spec =
      match parse_doc_spec spec with
      | Error e ->
        prerr_endline e;
        exit 1
      | Ok (host, name, file) ->
        let peer =
          if host = "client" then client
          else
            match Hashtbl.find_opt net.Xd_xrpc.Network.peers host with
            | Some p -> p
            | None -> Xd_xrpc.Network.new_peer net host
        in
        ignore (Xd_xrpc.Peer.load_xml peer ~doc_name:name (read_file file))
    in
    List.iter load docs;
    match Xd_lang.Parser.parse_query src with
    | exception Xd_lang.Parser.Error (msg, pos) ->
      Printf.eprintf "parse error at offset %d: %s\n" pos msg;
      1
    | exception Xd_lang.Lexer.Error (msg, pos) ->
      Printf.eprintf "lex error at offset %d: %s\n" pos msg;
      1
    | q -> (
      (match Xd_lang.Static.check q with
      | [] -> ()
      | errors ->
        List.iter
          (fun e -> Format.eprintf "static error: %a@." Xd_lang.Static.pp_error e)
          errors;
        exit 1);
      let strategy =
        match strategy with
        | `Fixed s -> s
        | `Auto ->
          let s = Xd_core.Cost.choose ~code_motion net q in
          Format.eprintf "auto strategy: %s@."
            (Xd_core.Strategy.to_string s);
          List.iter
            (fun e -> Format.eprintf "  %a@." Xd_core.Cost.pp_estimate e)
            (Xd_core.Cost.estimate_all ~code_motion net q);
          s
      in
      if explain then begin
        let plan = Xd_core.Decompose.decompose ~code_motion strategy q in
        Format.printf "%a@." Xd_core.Decompose.explain plan
      end;
      match Xd_core.Executor.run ~code_motion net ~client strategy q with
      | exception Xd_lang.Env.Dynamic_error msg ->
        Printf.eprintf "dynamic error: %s\n" msg;
        1
      | exception Xd_lang.Value.Type_error msg ->
        Printf.eprintf "type error: %s\n" msg;
        1
      | r ->
        print_endline (Xd_lang.Value.serialize r.Xd_core.Executor.value);
        if stats then begin
          let t = r.Xd_core.Executor.timing in
          Printf.eprintf
            "strategy: %s\nmessages: %d (%d bytes), documents fetched: %d \
             bytes\ntimes: wall %.3fms, serialize %.3fms, shred %.3fms, \
             remote %.3fms, network(sim) %.3fms\n"
            (Xd_core.Strategy.to_string strategy)
            t.Xd_core.Executor.messages t.Xd_core.Executor.message_bytes
            t.Xd_core.Executor.document_bytes
            (t.Xd_core.Executor.wall_s *. 1000.)
            (t.Xd_core.Executor.serialize_s *. 1000.)
            (t.Xd_core.Executor.shred_s *. 1000.)
            (t.Xd_core.Executor.remote_exec_s *. 1000.)
            (t.Xd_core.Executor.network_s *. 1000.)
        end;
        0))

let cmd =
  let doc = "distributed XQuery over simulated XRPC peers" in
  let info = Cmd.info "xdxq" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ docs_arg $ strategy_arg $ explain_arg $ stats_arg
      $ code_motion_arg $ query_string_arg $ query_file_arg)

let () = exit (Cmd.eval' cmd)
