(* xdxq — run an XQuery over simulated XRPC peers under a chosen
   distribution strategy.

     xdxq [--doc HOST/NAME=FILE]... [--strategy STRAT] [--explain]
          [--types] [--effects] [--no-parallel] [--no-typing]
          [--verify-plan] [--plan] [--force]
          [--fault-spec SPEC] [--fault-seed N] [--timeout S] [--retries N]
          [--txn] [--journal-dir DIR] [--trace] [--trace-out FILE]
          [--trace-format jsonl|chrome] [--metrics]
          [--catalog SPEC] [--topo-churn SPEC] [--show-catalog] QUERY

   QUERY is a file name, or a literal query with --query. Documents are
   loaded onto named peers; the query addresses them as
   doc("xrpc://HOST/NAME"). Documents for the special host "client" are
   local to the querying peer and addressed as doc("NAME"). *)

open Cmdliner

let strategy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "data-shipping" | "ds" -> Ok (`Fixed Xd_core.Strategy.Data_shipping)
    | "by-value" | "value" -> Ok (`Fixed Xd_core.Strategy.By_value)
    | "by-fragment" | "fragment" -> Ok (`Fixed Xd_core.Strategy.By_fragment)
    | "by-projection" | "projection" ->
      Ok (`Fixed Xd_core.Strategy.By_projection)
    | "auto" -> Ok `Auto
    | _ -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt = function
    | `Fixed s -> Format.pp_print_string fmt (Xd_core.Strategy.to_string s)
    | `Auto -> Format.pp_print_string fmt "auto"
  in
  Arg.conv (parse, print)

let docs_arg =
  let doc = "Load FILE onto peer HOST as document NAME (HOST/NAME=FILE)." in
  Arg.(value & opt_all string [] & info [ "doc"; "d" ] ~docv:"HOST/NAME=FILE" ~doc)

let strategy_arg =
  let doc =
    "Distribution strategy: data-shipping, by-value, by-fragment, \
     by-projection, or auto (pick by the cost model)."
  in
  Arg.(
    value
    & opt strategy_conv (`Fixed Xd_core.Strategy.By_projection)
    & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc)

let explain_arg =
  let doc = "Print the decomposed plan before executing." in
  Arg.(value & flag & info [ "explain" ] ~doc)

let stats_arg =
  let doc = "Print transfer and timing statistics after executing." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let code_motion_arg =
  let doc = "Apply distributed code motion." in
  Arg.(value & flag & info [ "code-motion" ] ~doc)

let types_arg =
  let doc =
    "Print the inferred static sequence type of every query vertex (item \
     kinds × occurrence) and exit without executing. Definite type errors \
     still fail the run."
  in
  Arg.(value & flag & info [ "types" ] ~doc)

let effects_arg =
  let doc =
    "Print the static effect analysis — per-vertex read/write footprints \
     over (document, projection-path) pairs, per-function summaries, and \
     the overlap schedule of provably non-interfering execute-at calls — \
     and exit without executing."
  in
  Arg.(value & flag & info [ "effects" ] ~doc)

let no_parallel_arg =
  let doc =
    "Disable the effect-analysis overlap schedule: every remote call runs \
     (and bills the simulated clock) sequentially, with no batched \
     envelopes. Reproduces the pre-scheduling baseline exactly."
  in
  Arg.(value & flag & info [ "no-parallel" ] ~doc)

let no_typing_arg =
  let doc =
    "Disable type-based widening of the decomposition conditions and the \
     cardinality-aware cost model (the safety verifier always keeps its \
     own, independently derived typing)."
  in
  Arg.(value & flag & info [ "no-typing" ] ~doc)

let verify_plan_arg =
  let doc =
    "Run the distribution-safety verifier on the plan and print its full \
     report (errors and warnings) before executing."
  in
  Arg.(value & flag & info [ "verify-plan" ] ~doc)

let plan_arg =
  let doc =
    "Treat the query as an already-decomposed plan: skip decomposition and \
     execute its execute-at calls as written (they are still verified)."
  in
  Arg.(value & flag & info [ "plan" ] ~doc)

let force_arg =
  let doc = "Execute even when the verifier rejects the plan." in
  Arg.(value & flag & info [ "force" ] ~doc)

let fault_spec_arg =
  let doc =
    "Inject deterministic wire faults. SPEC is ';'-separated rules \
     [PEER:]KIND[=PARAM][@PROB][#LIMIT][%SKIP] with KIND one of drop, \
     dup, truncate, delay, crash, restart, down (e.g. \
     'peer1:drop@0.2#3;delay=0.5@0.1')."
  in
  Arg.(
    value & opt (some string) None & info [ "fault-spec" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc = "Seed for the fault schedule (same spec+seed => same faults)." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let timeout_arg =
  let doc = "Per-call timeout in simulated seconds." in
  Arg.(value & opt float 1.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let retries_arg =
  let doc = "Retry budget per call (re-sends after the first attempt)." in
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)

let txn_arg =
  let doc =
    "Always run the query as a distributed transaction (two-phase commit \
     across update-carrying peers). Without this flag, 2PC is used \
     automatically when updates may span several peers."
  in
  Arg.(value & flag & info [ "txn" ] ~doc)

let journal_dir_arg =
  let doc =
    "Write per-peer transaction journals under DIR (created if missing), \
     so staged updates and commit decisions survive simulated \
     crash-restarts. Without it, journals are kept in memory."
  in
  Arg.(
    value & opt (some string) None & info [ "journal-dir" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Record a distributed trace of the execution: hierarchical spans for \
     every call, attempt, (de)serialization, evaluation and 2PC exchange, \
     across every peer the query touches. Written to --trace-out, or to \
     stderr."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_out_arg =
  let doc = "Write the trace to FILE (implies --trace)." in
  Arg.(
    value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace export format: $(b,jsonl) (one JSON object per span per line) \
     or $(b,chrome) (trace_event JSON for chrome://tracing / Perfetto)."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let metrics_arg =
  let doc =
    "Dump the full metrics registry (counters, gauges, histograms) to \
     stderr after executing."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let catalog_arg =
  let doc =
    "Install a dynamic-topology catalog: ';'-separated \
     OWNER/DOC[+REPLICA...] entries mapping documents to owning peers \
     (e.g. 'peer1/d.xml+peer2;peer2/e.xml'). Computed execute-at hosts \
     resolve against it at call time; peers forward calls for documents \
     they no longer own; reads fail over to replicas of down owners."
  in
  Arg.(value & opt (some string) None & info [ "catalog" ] ~docv:"SPEC" ~doc)

let topo_churn_arg =
  let doc =
    "Scripted membership churn over the catalog (requires --catalog). \
     SPEC is ';'-separated N:EVENT rules fired when the N-th message \
     hits the wire, with EVENT one of move=DOC/PEER, join=PEER, \
     leave=PEER, down=PEER, up=PEER (e.g. '2:move=d.xml/peer2')."
  in
  Arg.(
    value & opt (some string) None & info [ "topo-churn" ] ~docv:"SPEC" ~doc)

let show_catalog_arg =
  let doc =
    "Print the catalog (entries, members, epoch) after executing — \
     post-churn state, when --topo-churn fired events."
  in
  Arg.(value & flag & info [ "show-catalog" ] ~doc)

let peer_capacity_arg =
  let doc =
    "Give every peer a bounded-capacity server model: N concurrent \
     service slots on the simulated clock. Admitted requests queue \
     (bounded by --queue-cap) and are charged their queueing delay; a \
     full queue sheds with a retryable xrpc:server.overloaded fault \
     carrying a server-suggested retry-after. 0 (the default) disables \
     the model and keeps the wire byte-identical."
  in
  Arg.(value & opt int 0 & info [ "peer-capacity" ] ~docv:"N" ~doc)

let queue_cap_arg =
  let doc =
    "Admission queue bound per peer (waiting requests beyond the busy \
     slots; requires --peer-capacity)."
  in
  Arg.(value & opt int 8 & info [ "queue-cap" ] ~docv:"N" ~doc)

let service_time_arg =
  let doc =
    "Minimum service time per admitted call unit in simulated seconds \
     (requires --peer-capacity)."
  in
  Arg.(
    value & opt float 0.001 & info [ "service-time" ] ~docv:"SECONDS" ~doc)

let deadline_arg =
  let doc =
    "End-to-end deadline budget for the query in simulated seconds. \
     Every message carries the remaining budget, decremented across \
     every hop; callees refuse work the budget cannot cover with a \
     non-retryable xrpc:deadline.exceeded fault."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let retry_budget_arg =
  let doc =
    "Shared retry pool for the whole query execution: all calls of the \
     plan draw re-sends from this one budget (per-call --retries still \
     applies on top)."
  in
  Arg.(
    value & opt (some int) None & info [ "retry-budget" ] ~docv:"N" ~doc)

let show_breakers_arg =
  let doc =
    "Print the per-peer circuit-breaker states after executing \
     (requires --peer-capacity)."
  in
  Arg.(value & flag & info [ "show-breakers" ] ~doc)

let query_string_arg =
  let doc = "Give the query inline instead of in a file." in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"QUERY" ~doc)

let query_file_arg =
  let doc = "Query file." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_doc_spec s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad --doc %S (expected HOST/NAME=FILE)" s)
  | Some eq -> (
    let target = String.sub s 0 eq in
    let file = String.sub s (eq + 1) (String.length s - eq - 1) in
    match String.index_opt target '/' with
    | None -> Error (Printf.sprintf "bad --doc %S (expected HOST/NAME=FILE)" s)
    | Some sl ->
      Ok
        ( String.sub target 0 sl,
          String.sub target (sl + 1) (String.length target - sl - 1),
          file ))

let run docs strategy explain stats code_motion types effects no_parallel
    no_typing verify_plan as_plan force fault_spec fault_seed timeout_s
    retries txn journal_dir trace trace_out trace_format metrics catalog_spec
    topo_churn show_catalog peer_capacity queue_cap service_time deadline
    retry_budget show_breakers query_string query_file =
  let typing = not no_typing in
  let query_src =
    match (query_string, query_file) with
    | Some q, _ -> Ok q
    | None, Some f -> Ok (read_file f)
    | None, None -> Error "no query given (positional FILE or --query)"
  in
  match query_src with
  | Error e ->
    prerr_endline e;
    1
  | Ok src -> (
    let fault =
      match fault_spec with
      | None -> Xd_xrpc.Fault.none
      | Some s -> (
        match Xd_xrpc.Fault.parse s with
        | Ok spec -> Xd_xrpc.Fault.create ~seed:fault_seed spec
        | Error e ->
          Printf.eprintf "bad --fault-spec: %s\n" e;
          exit 1)
    in
    let net = Xd_xrpc.Network.create ~fault ?journal_dir () in
    (match catalog_spec with
    | None ->
      if Option.is_some topo_churn then begin
        prerr_endline "bad --topo-churn: requires --catalog";
        exit 1
      end
    | Some s -> (
      match Xd_topo.Catalog.of_spec s with
      | Error e ->
        Printf.eprintf "bad --catalog: %s\n" e;
        exit 1
      | Ok cat -> (
        Xd_xrpc.Network.set_catalog net cat;
        match topo_churn with
        | None -> ()
        | Some cs -> (
          match Xd_topo.Churn.parse cs with
          | Error e ->
            Printf.eprintf "bad --topo-churn: %s\n" e;
            exit 1
          | Ok events ->
            Xd_xrpc.Network.set_churn net (Xd_topo.Churn.create events)))));
    if peer_capacity < 0 then begin
      prerr_endline "bad --peer-capacity: must be >= 0";
      exit 1
    end;
    if peer_capacity > 0 then begin
      match
        Xd_xrpc.Overload.create ~capacity:peer_capacity ~queue_cap
          ~service_s:service_time ()
      with
      | ov -> Xd_xrpc.Network.set_overload net ov
      | exception Invalid_argument m ->
        Printf.eprintf "bad overload config: %s\n" m;
        exit 1
    end
    else if show_breakers then begin
      prerr_endline "bad --show-breakers: requires --peer-capacity";
      exit 1
    end;
    let client = Xd_xrpc.Network.new_peer net "client" in
    let tracer =
      if trace || trace_out <> None then Some (Xd_obs.Trace.create ())
      else None
    in
    (* the trace is exported even when execution ends in a typed fault or
       timeout — failed runs are the ones worth looking at *)
    let export_trace () =
      match tracer with
      | None -> ()
      | Some tr -> (
        let contents =
          match trace_format with
          | `Jsonl -> Xd_obs.Sink.jsonl tr
          | `Chrome -> Xd_obs.Sink.chrome tr
        in
        match trace_out with
        | Some path -> Xd_obs.Sink.write_file path contents
        | None -> prerr_string contents)
    in
    let dump_metrics () =
      if metrics then
        Format.eprintf "%a@?" Xd_obs.Metrics.dump
          (Xd_xrpc.Stats.registry net.Xd_xrpc.Network.stats)
    in
    (* breaker states are worth seeing on failed runs too — an open
       breaker is usually why the run failed *)
    let print_breakers () =
      if show_breakers then
        Option.iter
          (Format.printf "%a" Xd_xrpc.Overload.pp_breakers)
          net.Xd_xrpc.Network.overload
    in
    let load spec =
      match parse_doc_spec spec with
      | Error e ->
        prerr_endline e;
        exit 1
      | Ok (host, name, file) ->
        let peer =
          if host = "client" then client
          else
            match Hashtbl.find_opt net.Xd_xrpc.Network.peers host with
            | Some p -> p
            | None -> Xd_xrpc.Network.new_peer net host
        in
        ignore (Xd_xrpc.Peer.load_xml peer ~doc_name:name (read_file file))
    in
    List.iter load docs;
    match Xd_lang.Parser.parse_query src with
    | exception Xd_lang.Parser.Error (msg, pos) ->
      Printf.eprintf "parse error at offset %d: %s\n" pos msg;
      1
    | exception Xd_lang.Lexer.Error (msg, pos) ->
      Printf.eprintf "lex error at offset %d: %s\n" pos msg;
      1
    | q -> (
      (match Xd_lang.Static.check q with
      | [] -> ()
      | errors ->
        List.iter
          (fun e -> Format.eprintf "static error: %a@." Xd_lang.Static.pp_error e)
          errors;
        exit 1);
      (* definite type errors join the static gate: a provably atomic,
         provably non-empty value in a node-requiring position fails
         every evaluation that reaches it *)
      let tres = Xd_types.Infer.infer_query q in
      if types then Format.printf "%a" (fun fmt () -> Xd_types.Infer.pp_dump fmt q tres) ();
      (match tres.Xd_types.Infer.errors with
      | [] -> ()
      | errors ->
        List.iter
          (fun e ->
            Format.eprintf "type error: %a@." Xd_types.Infer.pp_error e)
          errors;
        exit 1);
      if types then exit 0;
      if effects then begin
        let eres = Xd_effects.Effects.analyze q in
        Format.printf "%a" (fun fmt () -> Xd_effects.Effects.pp_dump fmt q eres) ();
        exit 0
      end;
      let strategy =
        match strategy with
        | `Fixed s -> s
        | `Auto ->
          let s = Xd_core.Cost.choose ~code_motion ~typing net q in
          Format.eprintf "auto strategy: %s@."
            (Xd_core.Strategy.to_string s);
          List.iter
            (fun e -> Format.eprintf "  %a@." Xd_core.Cost.pp_estimate e)
            (Xd_core.Cost.estimate_all ~code_motion ~typing net q);
          s
      in
      let plan =
        if as_plan then Xd_core.Decompose.plan_of_query strategy q
        else Xd_core.Decompose.decompose ~code_motion ~typing strategy q
      in
      if explain then Format.printf "%a@." Xd_core.Decompose.explain plan;
      if verify_plan then begin
        let report =
          Xd_core.Executor.verify_plan
            ?catalog:net.Xd_xrpc.Network.catalog ~client plan
        in
        Format.printf "%a@." Xd_verify.Verify.pp_report report
      end;
      match
        Xd_core.Executor.run_plan ~timeout_s ~retries ?deadline ?retry_budget
          ~txn:(if txn then `Always else `Auto)
          ~parallel:(not no_parallel) ~force ?trace:tracer net ~client plan
      with
      | exception Xd_core.Executor.Plan_rejected report ->
        Format.eprintf "plan rejected by the distribution-safety verifier:@.";
        List.iter
          (fun d -> Format.eprintf "  %a@." Xd_verify.Diag.pp d)
          (Xd_verify.Verify.errors report);
        Format.eprintf "(re-run with --force to execute anyway)@.";
        1
      | exception Xd_lang.Env.Dynamic_error msg ->
        Printf.eprintf "dynamic error: %s\n" msg;
        1
      | exception Xd_lang.Value.Type_error msg ->
        Printf.eprintf "type error: %s\n" msg;
        1
      | exception Xd_xrpc.Message.Xrpc_fault { host; code; reason } ->
        Printf.eprintf "xrpc fault from %s: %s: %s\n" host
          (Xd_xrpc.Message.fault_code_to_string code)
          reason;
        print_breakers ();
        export_trace ();
        dump_metrics ();
        1
      | exception Xd_xrpc.Message.Xrpc_timeout { host; attempts } ->
        Printf.eprintf "xrpc timeout: %s did not answer (%d attempts)\n" host
          attempts;
        print_breakers ();
        export_trace ();
        dump_metrics ();
        1
      | r ->
        print_endline (Xd_lang.Value.serialize r.Xd_core.Executor.value);
        if show_catalog then
          Option.iter
            (Format.printf "%a@." Xd_topo.Catalog.pp)
            net.Xd_xrpc.Network.catalog;
        if stats then begin
          if Xd_xrpc.Stats.is_empty net.Xd_xrpc.Network.stats then
            Printf.eprintf "strategy: %s\n(no remote activity)\n"
              (Xd_core.Strategy.to_string strategy)
          else begin
          let t = r.Xd_core.Executor.timing in
          Printf.eprintf
            "strategy: %s\nmessages: %d (%d bytes), documents fetched: %d \
             bytes\ntimes: wall %.3fms, serialize %.3fms, shred %.3fms, \
             remote %.3fms, network(sim) %.3fms\n"
            (Xd_core.Strategy.to_string strategy)
            t.Xd_core.Executor.messages t.Xd_core.Executor.message_bytes
            t.Xd_core.Executor.document_bytes
            (t.Xd_core.Executor.wall_s *. 1000.)
            (t.Xd_core.Executor.serialize_s *. 1000.)
            (t.Xd_core.Executor.shred_s *. 1000.)
            (t.Xd_core.Executor.remote_exec_s *. 1000.)
            (t.Xd_core.Executor.network_s *. 1000.);
          Printf.eprintf
            "faults: injected %d, timeouts %d, retries %d, fallbacks %d, \
             dedup-hits %d\n"
            t.Xd_core.Executor.faults t.Xd_core.Executor.timeouts
            t.Xd_core.Executor.retries t.Xd_core.Executor.fallbacks
            t.Xd_core.Executor.dedup_hits;
          if
            t.Xd_core.Executor.txn_commits > 0
            || t.Xd_core.Executor.txn_aborts > 0
            || t.Xd_core.Executor.txn_staged > 0
          then
            Printf.eprintf "txn: staged %d, commits %d, aborts %d\n"
              t.Xd_core.Executor.txn_staged t.Xd_core.Executor.txn_commits
              t.Xd_core.Executor.txn_aborts;
          if
            t.Xd_core.Executor.topo_resolutions > 0
            || t.Xd_core.Executor.forwarded > 0
            || t.Xd_core.Executor.topo_failovers > 0
            || t.Xd_core.Executor.topo_epoch_aborts > 0
          then
            Printf.eprintf
              "topo: resolutions %d, forwarded %d, failovers %d, \
               epoch-aborts %d\n"
              t.Xd_core.Executor.topo_resolutions
              t.Xd_core.Executor.forwarded
              t.Xd_core.Executor.topo_failovers
              t.Xd_core.Executor.topo_epoch_aborts;
          (match Xd_xrpc.Stats.down_peers net.Xd_xrpc.Network.stats with
          | [] -> ()
          | ps -> Printf.eprintf "peers down: %s\n" (String.concat ", " ps));
          if t.Xd_core.Executor.sched_groups > 0 then
            Printf.eprintf
              "sched: groups %d, overlapped calls %d, saved %.3fms \
               (sim)\nbatch: envelopes %d, calls %d\n"
              t.Xd_core.Executor.sched_groups
              t.Xd_core.Executor.sched_overlapped
              (t.Xd_core.Executor.sched_saved_s *. 1000.)
              t.Xd_core.Executor.batch_envelopes
              t.Xd_core.Executor.batch_calls;
          if
            t.Xd_core.Executor.ov_admitted > 0
            || t.Xd_core.Executor.ov_shed > 0
            || t.Xd_core.Executor.ov_deadline_rejects > 0
          then
            Printf.eprintf
              "overload: admitted %d, shed %d, deadline-rejects %d, \
               queue-wait %.3fms (sim)\n"
              t.Xd_core.Executor.ov_admitted t.Xd_core.Executor.ov_shed
              t.Xd_core.Executor.ov_deadline_rejects
              (t.Xd_core.Executor.ov_queue_wait_s *. 1000.);
          if
            t.Xd_core.Executor.breaker_opens > 0
            || t.Xd_core.Executor.breaker_shed > 0
            || t.Xd_core.Executor.breaker_probes > 0
            || t.Xd_core.Executor.retry_budget_stops > 0
          then
            Printf.eprintf
              "breaker: opens %d, shed %d, probes %d, budget-stops %d\n"
              t.Xd_core.Executor.breaker_opens
              t.Xd_core.Executor.breaker_shed
              t.Xd_core.Executor.breaker_probes
              t.Xd_core.Executor.retry_budget_stops
          end
        end;
        print_breakers ();
        export_trace ();
        dump_metrics ();
        0))

let cmd =
  let doc = "distributed XQuery over simulated XRPC peers" in
  let info = Cmd.info "xdxq" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ docs_arg $ strategy_arg $ explain_arg $ stats_arg
      $ code_motion_arg $ types_arg $ effects_arg $ no_parallel_arg
      $ no_typing_arg $ verify_plan_arg $ plan_arg $ force_arg
      $ fault_spec_arg $ fault_seed_arg $ timeout_arg $ retries_arg
      $ txn_arg $ journal_dir_arg $ trace_arg $ trace_out_arg
      $ trace_format_arg $ metrics_arg $ catalog_arg $ topo_churn_arg
      $ show_catalog_arg $ peer_capacity_arg $ queue_cap_arg
      $ service_time_arg $ deadline_arg $ retry_budget_arg
      $ show_breakers_arg $ query_string_arg $ query_file_arg)

let () = exit (Cmd.eval' cmd)
