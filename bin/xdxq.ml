(* xdxq — run an XQuery over simulated XRPC peers under a chosen
   distribution strategy.

     xdxq [--doc HOST/NAME=FILE]... [--strategy STRAT] [--explain]
          [--types] [--effects] [--shapes] [--no-parallel] [--no-codec]
          [--no-typing] [--verify-plan] [--plan] [--force]
          [--fault-spec SPEC] [--fault-seed N] [--timeout S] [--retries N]
          [--txn] [--journal-dir DIR] [--trace] [--trace-out FILE]
          [--trace-format jsonl|chrome] [--metrics]
          [--catalog SPEC] [--topo-churn SPEC] [--show-catalog] QUERY

   QUERY is a file name, or a literal query with --query. Documents are
   loaded onto named peers; the query addresses them as
   doc("xrpc://HOST/NAME"). Documents for the special host "client" are
   local to the querying peer and addressed as doc("NAME"). *)

open Cmdliner

let strategy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "data-shipping" | "ds" -> Ok (`Fixed Xd_core.Strategy.Data_shipping)
    | "by-value" | "value" -> Ok (`Fixed Xd_core.Strategy.By_value)
    | "by-fragment" | "fragment" -> Ok (`Fixed Xd_core.Strategy.By_fragment)
    | "by-projection" | "projection" ->
      Ok (`Fixed Xd_core.Strategy.By_projection)
    | "auto" -> Ok `Auto
    | _ -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt = function
    | `Fixed s -> Format.pp_print_string fmt (Xd_core.Strategy.to_string s)
    | `Auto -> Format.pp_print_string fmt "auto"
  in
  Arg.conv (parse, print)

let docs_arg =
  let doc = "Load FILE onto peer HOST as document NAME (HOST/NAME=FILE)." in
  Arg.(value & opt_all string [] & info [ "doc"; "d" ] ~docv:"HOST/NAME=FILE" ~doc)

let strategy_arg =
  let doc =
    "Distribution strategy: data-shipping, by-value, by-fragment, \
     by-projection, or auto (pick by the cost model)."
  in
  Arg.(
    value
    & opt strategy_conv (`Fixed Xd_core.Strategy.By_projection)
    & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc)

let explain_arg =
  let doc =
    "Print the decomposed plan before executing, then an explain-analyze \
     table after it: per d-graph vertex, the cost model's estimated wire \
     bytes next to the measured actuals (folded from an internal trace), \
     with misestimate ratios — vertices off by more than 4x are flagged."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let stats_arg =
  let doc = "Print transfer and timing statistics after executing." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let code_motion_arg =
  let doc = "Apply distributed code motion." in
  Arg.(value & flag & info [ "code-motion" ] ~doc)

let types_arg =
  let doc =
    "Print the inferred static sequence type of every query vertex (item \
     kinds × occurrence) and exit without executing. Definite type errors \
     still fail the run."
  in
  Arg.(value & flag & info [ "types" ] ~doc)

let effects_arg =
  let doc =
    "Print the static effect analysis — per-vertex read/write footprints \
     over (document, projection-path) pairs, per-function summaries, and \
     the overlap schedule of provably non-interfering execute-at calls — \
     and exit without executing."
  in
  Arg.(value & flag & info [ "effects" ] ~doc)

let shapes_arg =
  let doc =
    "Print the static wire-shape analysis — the fixed envelope layout, \
     then per call site the inferred parameter and response shapes and \
     whether a compiled encoder/decoder applies — plus the codec-priced \
     cost estimate, and exit without executing."
  in
  Arg.(value & flag & info [ "shapes" ] ~doc)

let no_parallel_arg =
  let doc =
    "Disable the effect-analysis overlap schedule: every remote call runs \
     (and bills the simulated clock) sequentially, with no batched \
     envelopes. Reproduces the pre-scheduling baseline exactly."
  in
  Arg.(value & flag & info [ "no-parallel" ] ~doc)

let no_codec_arg =
  let doc =
    "Disable the compiled wire-shape codecs: every message is written and \
     shredded by the generic paths. The wire is byte-identical either \
     way; this is the ablation baseline for 'bench codec'."
  in
  Arg.(value & flag & info [ "no-codec" ] ~doc)

let no_typing_arg =
  let doc =
    "Disable type-based widening of the decomposition conditions and the \
     cardinality-aware cost model (the safety verifier always keeps its \
     own, independently derived typing)."
  in
  Arg.(value & flag & info [ "no-typing" ] ~doc)

let verify_plan_arg =
  let doc =
    "Run the distribution-safety verifier on the plan and print its full \
     report (errors and warnings) before executing."
  in
  Arg.(value & flag & info [ "verify-plan" ] ~doc)

let plan_arg =
  let doc =
    "Treat the query as an already-decomposed plan: skip decomposition and \
     execute its execute-at calls as written (they are still verified)."
  in
  Arg.(value & flag & info [ "plan" ] ~doc)

let force_arg =
  let doc = "Execute even when the verifier rejects the plan." in
  Arg.(value & flag & info [ "force" ] ~doc)

let fault_spec_arg =
  let doc =
    "Inject deterministic wire faults. SPEC is ';'-separated rules \
     [PEER:]KIND[=PARAM][@PROB][#LIMIT][%SKIP] with KIND one of drop, \
     dup, truncate, delay, crash, restart, down (e.g. \
     'peer1:drop@0.2#3;delay=0.5@0.1')."
  in
  Arg.(
    value & opt (some string) None & info [ "fault-spec" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc = "Seed for the fault schedule (same spec+seed => same faults)." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let timeout_arg =
  let doc = "Per-call timeout in simulated seconds." in
  Arg.(value & opt float 1.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let retries_arg =
  let doc = "Retry budget per call (re-sends after the first attempt)." in
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)

let txn_arg =
  let doc =
    "Always run the query as a distributed transaction (two-phase commit \
     across update-carrying peers). Without this flag, 2PC is used \
     automatically when updates may span several peers."
  in
  Arg.(value & flag & info [ "txn" ] ~doc)

let journal_dir_arg =
  let doc =
    "Write per-peer transaction journals under DIR (created if missing), \
     so staged updates and commit decisions survive simulated \
     crash-restarts. Without it, journals are kept in memory."
  in
  Arg.(
    value & opt (some string) None & info [ "journal-dir" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Record a distributed trace of the execution: hierarchical spans for \
     every call, attempt, (de)serialization, evaluation and 2PC exchange, \
     across every peer the query touches. Written to --trace-out, or to \
     stderr."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_out_arg =
  let doc = "Write the trace to FILE (implies --trace)." in
  Arg.(
    value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace export format: $(b,jsonl) (one JSON object per span per line) \
     or $(b,chrome) (trace_event JSON for chrome://tracing / Perfetto)."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let metrics_arg =
  let doc =
    "Dump the full metrics registry (counters, gauges, histograms) to \
     stderr after executing."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_format_arg =
  let doc =
    "Metrics output format: $(b,dump) (the legacy registry dump) or \
     $(b,prom) (Prometheus/OpenMetrics text exposition; each histogram \
     carries the trace id of its extreme observation as an exemplar, \
     when the run was traced)."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("dump", `Dump); ("prom", `Prom) ]) `Dump
    & info [ "metrics-format" ] ~docv:"FORMAT" ~doc)

let query_log_arg =
  let doc =
    "Append one structured JSON record per executed query to FILE: the \
     strategy chosen, the cost-model estimate (total and per vertex), \
     measured transfer/time actuals, fault/retry/shed counts, and the \
     catalog epoch."
  in
  Arg.(
    value & opt (some string) None & info [ "query-log" ] ~docv:"FILE" ~doc)

let catalog_arg =
  let doc =
    "Install a dynamic-topology catalog: ';'-separated \
     OWNER/DOC[+REPLICA...] entries mapping documents to owning peers \
     (e.g. 'peer1/d.xml+peer2;peer2/e.xml'). Computed execute-at hosts \
     resolve against it at call time; peers forward calls for documents \
     they no longer own; reads fail over to replicas of down owners."
  in
  Arg.(value & opt (some string) None & info [ "catalog" ] ~docv:"SPEC" ~doc)

let topo_churn_arg =
  let doc =
    "Scripted membership churn over the catalog (requires --catalog). \
     SPEC is ';'-separated N:EVENT rules fired when the N-th message \
     hits the wire, with EVENT one of move=DOC/PEER, join=PEER, \
     leave=PEER, down=PEER, up=PEER (e.g. '2:move=d.xml/peer2')."
  in
  Arg.(
    value & opt (some string) None & info [ "topo-churn" ] ~docv:"SPEC" ~doc)

let show_catalog_arg =
  let doc =
    "Print the catalog (entries, members, epoch) after executing — \
     post-churn state, when --topo-churn fired events."
  in
  Arg.(value & flag & info [ "show-catalog" ] ~doc)

let peer_capacity_arg =
  let doc =
    "Give every peer a bounded-capacity server model: N concurrent \
     service slots on the simulated clock. Admitted requests queue \
     (bounded by --queue-cap) and are charged their queueing delay; a \
     full queue sheds with a retryable xrpc:server.overloaded fault \
     carrying a server-suggested retry-after. 0 (the default) disables \
     the model and keeps the wire byte-identical."
  in
  Arg.(value & opt int 0 & info [ "peer-capacity" ] ~docv:"N" ~doc)

let queue_cap_arg =
  let doc =
    "Admission queue bound per peer (waiting requests beyond the busy \
     slots; requires --peer-capacity)."
  in
  Arg.(value & opt int 8 & info [ "queue-cap" ] ~docv:"N" ~doc)

let service_time_arg =
  let doc =
    "Minimum service time per admitted call unit in simulated seconds \
     (requires --peer-capacity)."
  in
  Arg.(
    value & opt float 0.001 & info [ "service-time" ] ~docv:"SECONDS" ~doc)

let deadline_arg =
  let doc =
    "End-to-end deadline budget for the query in simulated seconds. \
     Every message carries the remaining budget, decremented across \
     every hop; callees refuse work the budget cannot cover with a \
     non-retryable xrpc:deadline.exceeded fault."
  in
  Arg.(
    value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let retry_budget_arg =
  let doc =
    "Shared retry pool for the whole query execution: all calls of the \
     plan draw re-sends from this one budget (per-call --retries still \
     applies on top)."
  in
  Arg.(
    value & opt (some int) None & info [ "retry-budget" ] ~docv:"N" ~doc)

let show_breakers_arg =
  let doc =
    "Print the per-peer circuit-breaker states after executing \
     (requires --peer-capacity)."
  in
  Arg.(value & flag & info [ "show-breakers" ] ~doc)

let query_string_arg =
  let doc = "Give the query inline instead of in a file." in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"QUERY" ~doc)

let query_file_arg =
  let doc = "Query file." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_doc_spec s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad --doc %S (expected HOST/NAME=FILE)" s)
  | Some eq -> (
    let target = String.sub s 0 eq in
    let file = String.sub s (eq + 1) (String.length s - eq - 1) in
    match String.index_opt target '/' with
    | None -> Error (Printf.sprintf "bad --doc %S (expected HOST/NAME=FILE)" s)
    | Some sl ->
      Ok
        ( String.sub target 0 sl,
          String.sub target (sl + 1) (String.length target - sl - 1),
          file ))

let run docs strategy explain stats code_motion types effects shapes
    no_parallel no_codec
    no_typing verify_plan as_plan force fault_spec fault_seed timeout_s
    retries txn journal_dir trace trace_out trace_format metrics
    metrics_format query_log catalog_spec topo_churn show_catalog
    peer_capacity queue_cap service_time deadline retry_budget show_breakers
    query_string query_file =
  let typing = not no_typing in
  let query_src =
    match (query_string, query_file) with
    | Some q, _ -> Ok q
    | None, Some f -> Ok (read_file f)
    | None, None -> Error "no query given (positional FILE or --query)"
  in
  match query_src with
  | Error e ->
    prerr_endline e;
    1
  | Ok src -> (
    let fault =
      match fault_spec with
      | None -> Xd_xrpc.Fault.none
      | Some s -> (
        match Xd_xrpc.Fault.parse s with
        | Ok spec -> Xd_xrpc.Fault.create ~seed:fault_seed spec
        | Error e ->
          Printf.eprintf "bad --fault-spec: %s\n" e;
          exit 1)
    in
    let net = Xd_xrpc.Network.create ~fault ?journal_dir () in
    (match catalog_spec with
    | None ->
      if Option.is_some topo_churn then begin
        prerr_endline "bad --topo-churn: requires --catalog";
        exit 1
      end
    | Some s -> (
      match Xd_topo.Catalog.of_spec s with
      | Error e ->
        Printf.eprintf "bad --catalog: %s\n" e;
        exit 1
      | Ok cat -> (
        Xd_xrpc.Network.set_catalog net cat;
        match topo_churn with
        | None -> ()
        | Some cs -> (
          match Xd_topo.Churn.parse cs with
          | Error e ->
            Printf.eprintf "bad --topo-churn: %s\n" e;
            exit 1
          | Ok events ->
            Xd_xrpc.Network.set_churn net (Xd_topo.Churn.create events)))));
    if peer_capacity < 0 then begin
      prerr_endline "bad --peer-capacity: must be >= 0";
      exit 1
    end;
    if peer_capacity > 0 then begin
      match
        Xd_xrpc.Overload.create ~capacity:peer_capacity ~queue_cap
          ~service_s:service_time ()
      with
      | ov -> Xd_xrpc.Network.set_overload net ov
      | exception Invalid_argument m ->
        Printf.eprintf "bad overload config: %s\n" m;
        exit 1
    end
    else if show_breakers then begin
      prerr_endline "bad --show-breakers: requires --peer-capacity";
      exit 1
    end;
    let client = Xd_xrpc.Network.new_peer net "client" in
    (* --explain needs the span tree to fold measured per-vertex actuals,
       so it runs the query under an internal tracer; the trace is only
       *exported* when the user asked for it *)
    let user_trace = trace || trace_out <> None in
    let tracer =
      if user_trace || explain then Some (Xd_obs.Trace.create ()) else None
    in
    (* the trace is exported even when execution ends in a typed fault or
       timeout — failed runs are the ones worth looking at *)
    let export_trace () =
      if user_trace then
        match tracer with
        | None -> ()
        | Some tr -> (
          let contents =
            match trace_format with
            | `Jsonl -> Xd_obs.Sink.jsonl tr
            | `Chrome -> Xd_obs.Sink.chrome tr
          in
          match trace_out with
          | Some path -> Xd_obs.Sink.write_file path contents
          | None -> prerr_string contents)
    in
    let dump_metrics () =
      if metrics then
        let registry = Xd_xrpc.Stats.registry net.Xd_xrpc.Network.stats in
        match metrics_format with
        | `Dump -> Format.eprintf "%a@?" Xd_obs.Metrics.dump registry
        | `Prom -> Format.eprintf "%a@?" Xd_obs.Metrics.prom registry
    in
    let trace_id () =
      match tracer with
      | None -> None
      | Some tr -> (
        match Xd_obs.Trace.spans tr with
        | [] -> None
        | s :: _ -> Some s.Xd_obs.Trace.trace_id)
    in
    (* breaker states are worth seeing on failed runs too — an open
       breaker is usually why the run failed *)
    let print_breakers () =
      if show_breakers then
        Option.iter
          (Format.printf "%a" Xd_xrpc.Overload.pp_breakers)
          net.Xd_xrpc.Network.overload
    in
    let load spec =
      match parse_doc_spec spec with
      | Error e ->
        prerr_endline e;
        exit 1
      | Ok (host, name, file) ->
        let peer =
          if host = "client" then client
          else
            match Hashtbl.find_opt net.Xd_xrpc.Network.peers host with
            | Some p -> p
            | None -> Xd_xrpc.Network.new_peer net host
        in
        ignore (Xd_xrpc.Peer.load_xml peer ~doc_name:name (read_file file))
    in
    List.iter load docs;
    match Xd_lang.Parser.parse_query src with
    | exception Xd_lang.Parser.Error (msg, pos) ->
      Printf.eprintf "parse error at offset %d: %s\n" pos msg;
      1
    | exception Xd_lang.Lexer.Error (msg, pos) ->
      Printf.eprintf "lex error at offset %d: %s\n" pos msg;
      1
    | q -> (
      (match Xd_lang.Static.check q with
      | [] -> ()
      | errors ->
        List.iter
          (fun e -> Format.eprintf "static error: %a@." Xd_lang.Static.pp_error e)
          errors;
        exit 1);
      (* definite type errors join the static gate: a provably atomic,
         provably non-empty value in a node-requiring position fails
         every evaluation that reaches it *)
      let tres = Xd_types.Infer.infer_query q in
      if types then Format.printf "%a" (fun fmt () -> Xd_types.Infer.pp_dump fmt q tres) ();
      (match tres.Xd_types.Infer.errors with
      | [] -> ()
      | errors ->
        List.iter
          (fun e ->
            Format.eprintf "type error: %a@." Xd_types.Infer.pp_error e)
          errors;
        exit 1);
      if types then exit 0;
      if effects then begin
        let eres = Xd_effects.Effects.analyze q in
        Format.printf "%a" (fun fmt () -> Xd_effects.Effects.pp_dump fmt q eres) ();
        exit 0
      end;
      let strategy =
        match strategy with
        | `Fixed s -> s
        | `Auto ->
          let s = Xd_core.Cost.choose ~code_motion ~typing net q in
          Format.eprintf "auto strategy: %s@."
            (Xd_core.Strategy.to_string s);
          List.iter
            (fun e -> Format.eprintf "  %a@." Xd_core.Cost.pp_estimate e)
            (Xd_core.Cost.estimate_all ~code_motion ~typing net q);
          s
      in
      let plan =
        if as_plan then Xd_core.Decompose.plan_of_query strategy q
        else Xd_core.Decompose.decompose ~code_motion ~typing strategy q
      in
      if explain then Format.printf "%a@." Xd_core.Decompose.explain plan;
      if shapes then begin
        let sres = Xd_shape.Shape.analyze plan.Xd_core.Decompose.query in
        Format.printf "%a" (fun fmt () -> Xd_shape.Shape.pp_dump fmt sres) ();
        let est =
          Xd_core.Cost.estimate ~typing
            ~shapes:sres.Xd_shape.Shape.descriptors net plan
        in
        Format.printf "%a@." Xd_core.Cost.pp_estimate est;
        exit 0
      end;
      (* the cost model's prediction, taken before execution (updates can
         change document sizes): feeds the explain-analyze table and the
         query log *)
      let est = Xd_core.Cost.estimate ~typing net plan in
      let log_query status =
        match query_log with
        | None -> ()
        | Some path ->
          let s = net.Xd_xrpc.Network.stats in
          let open Xd_obs.Sink in
          let field k v = jstr k ^ ":" ^ v in
          let ints =
            List.map (fun (k, v) -> field k (string_of_int v))
          in
          let per_vertex =
            "{"
            ^ String.concat ","
                (List.map
                   (fun (v, b) ->
                     jstr (string_of_int v) ^ ":" ^ string_of_int b)
                   est.Xd_core.Cost.per_vertex)
            ^ "}"
          in
          let fields =
            [
              field "status" (jstr status);
              field "strategy"
                (jstr
                   (Xd_core.Strategy.to_string
                      plan.Xd_core.Decompose.strategy));
              field "est_total" (string_of_int (Xd_core.Cost.total est));
              field "est_per_vertex" per_vertex;
            ]
            @ ints
                [
                  ("message_bytes", Xd_xrpc.Stats.message_bytes s);
                  ("document_bytes", Xd_xrpc.Stats.document_bytes s);
                  ("messages", Xd_xrpc.Stats.messages s);
                  ("calls", Xd_xrpc.Stats.calls s);
                ]
            @ [
                field "serialize_s" (jfloat (Xd_xrpc.Stats.serialize_s s));
                field "shred_s" (jfloat (Xd_xrpc.Stats.shred_s s));
                field "remote_s" (jfloat (Xd_xrpc.Stats.remote_exec_s s));
                field "network_s" (jfloat (Xd_xrpc.Stats.network_s s));
              ]
            @ ints
                [
                  ("faults", Xd_xrpc.Stats.faults s);
                  ("timeouts", Xd_xrpc.Stats.timeouts s);
                  ("retries", Xd_xrpc.Stats.retries s);
                  ("fallbacks", Xd_xrpc.Stats.fallbacks s);
                  ( "shed",
                    Xd_xrpc.Stats.ov_shed s + Xd_xrpc.Stats.breaker_shed s
                  );
                  ("forwarded", Xd_xrpc.Stats.forwarded s);
                  ("failovers", Xd_xrpc.Stats.topo_failovers s);
                ]
            @ [
                field "catalog_epoch"
                  (match net.Xd_xrpc.Network.catalog with
                  | None -> "null"
                  | Some c -> string_of_int (Xd_topo.Catalog.epoch c));
              ]
            @ (match trace_id () with
              | None -> []
              | Some tid -> [ field "trace" (jstr tid) ])
          in
          append_file path ("{" ^ String.concat "," fields ^ "}\n")
      in
      (* per-vertex explain-analyze: join the cost model's per-vertex
         predictions with the measured actuals the profiler folds out of
         the span tree. Vertex ids are execute-at body ids; -1 is the
         client's own (unattributed) work. *)
      let explain_analyze () =
        match tracer with
        | None -> ()
        | Some tr ->
          let module Ast = Xd_lang.Ast in
          let module P = Xd_obs.Profile in
          let prof = P.of_spans (Xd_obs.Trace.spans tr) in
          let compact s =
            let b = Buffer.create (String.length s) in
            let ws = ref false in
            String.iter
              (fun c ->
                match c with
                | ' ' | '\n' | '\t' ->
                  if not !ws then Buffer.add_char b ' ';
                  ws := true
                | c ->
                  Buffer.add_char b c;
                  ws := false)
              s;
            let s = Buffer.contents b in
            if String.length s > 36 then String.sub s 0 33 ^ "..." else s
          in
          let labels = Hashtbl.create 8 in
          let rec walk (e : Ast.expr) =
            (match e.Ast.desc with
            | Ast.Execute_at x ->
              let host =
                match x.Ast.host.Ast.desc with
                | Ast.Literal (Ast.A_string h) -> h
                | _ -> "(computed)"
              in
              Hashtbl.replace labels x.Ast.body.Ast.id
                (host ^ ": " ^ compact (Xd_lang.Pp.expr_to_string x.Ast.body))
            | _ -> ());
            List.iter walk (Ast.children e)
          in
          let q = plan.Xd_core.Decompose.query in
          walk q.Ast.body;
          List.iter (fun (f : Ast.func) -> walk f.Ast.f_body) q.Ast.funcs;
          let est_of = Hashtbl.create 8 in
          List.iter
            (fun (v, b) -> Hashtbl.replace est_of v b)
            est.Xd_core.Cost.per_vertex;
          let vertices =
            let vs = Hashtbl.create 8 in
            List.iter
              (fun (v, _) -> Hashtbl.replace vs v ())
              est.Xd_core.Cost.per_vertex;
            List.iter
              (fun (r : P.row) -> Hashtbl.replace vs r.P.vertex ())
              (P.rows prof);
            Hashtbl.fold (fun v () acc -> v :: acc) vs []
            |> List.sort compare
          in
          let notes (r : P.row) =
            List.filter_map
              (fun (k, n) ->
                if n > 0 then Some (Printf.sprintf "%s=%d" k n) else None)
              [
                ("retries", r.P.retries);
                ("timeouts", r.P.timeouts);
                ("fallbacks", r.P.fallbacks);
                ("forwards", r.P.forwards);
                ("failovers", r.P.failovers);
                ("shed", r.P.shed);
              ]
            |> String.concat ","
          in
          let row_line name est_s (r : P.row) label =
            let ratio =
              match est_s with
              | Some e when e > 0 && r.P.bytes > 0 ->
                let x = float_of_int r.P.bytes /. float_of_int e in
                Printf.sprintf "%.2f%s" x
                  (if x > 4.0 || x < 0.25 then " !" else "")
              | Some e when e > 0 -> "0.00"
              | Some _ | None -> if r.P.bytes > 0 then "?" else "-"
            in
            let n = notes r in
            let suffix =
              match (label, n) with
              | "", "" -> ""
              | l, "" -> "  " ^ l
              | l, n -> "  " ^ l ^ "  [" ^ n ^ "]"
            in
            Printf.printf "%7s %9s %9d %8s %6d %10.3f %9.3f %9.3f %9.3f%s\n"
              name
              (match est_s with Some e -> string_of_int e | None -> "-")
              r.P.bytes ratio r.P.calls
              (r.P.wire_s *. 1000.)
              (r.P.serialize_s *. 1000.)
              (r.P.shred_s *. 1000.)
              (r.P.remote_s *. 1000.)
              suffix
          in
          Printf.printf
            "\nexplain analyze (cost model vs measured, per vertex):\n";
          Printf.printf "%7s %9s %9s %8s %6s %10s %9s %9s %9s  %s\n"
            "vertex" "est B" "act B" "ratio" "calls" "wire ms" "ser ms"
            "shred ms" "rem ms" "at: body";
          List.iter
            (fun v ->
              let r =
                match P.find prof v with
                | Some r -> r
                | None ->
                  (* estimated but never executed (e.g. shed, fallback):
                     an all-zero row keeps the prediction visible *)
                  {
                    P.vertex = v;
                    serialize_s = 0.;
                    shred_s = 0.;
                    remote_s = 0.;
                    wire_s = 0.;
                    server_s = 0.;
                    queue_wait_s = 0.;
                    bytes = 0;
                    calls = 0;
                    retries = 0;
                    timeouts = 0;
                    fallbacks = 0;
                    forwards = 0;
                    failovers = 0;
                    shed = 0;
                  }
              in
              let label =
                if v = P.local_vertex then "client: (local)"
                else
                  Option.value ~default:"?"
                    (Hashtbl.find_opt labels v)
              in
              row_line (string_of_int v) (Hashtbl.find_opt est_of v) r label)
            vertices;
          let tot = P.totals prof in
          let est_total =
            List.fold_left (fun a (_, b) -> a + b) 0
              est.Xd_core.Cost.per_vertex
          in
          row_line "total" (Some est_total) tot ""
      in
      if verify_plan then begin
        let report =
          Xd_core.Executor.verify_plan
            ?catalog:net.Xd_xrpc.Network.catalog ~client plan
        in
        Format.printf "%a@." Xd_verify.Verify.pp_report report
      end;
      match
        Xd_core.Executor.run_plan ~timeout_s ~retries ?deadline ?retry_budget
          ~txn:(if txn then `Always else `Auto)
          ~parallel:(not no_parallel) ~codec:(not no_codec) ~force
          ?trace:tracer net ~client plan
      with
      | exception Xd_core.Executor.Plan_rejected report ->
        Format.eprintf "plan rejected by the distribution-safety verifier:@.";
        List.iter
          (fun d -> Format.eprintf "  %a@." Xd_verify.Diag.pp d)
          (Xd_verify.Verify.errors report);
        Format.eprintf "(re-run with --force to execute anyway)@.";
        1
      | exception Xd_lang.Env.Dynamic_error msg ->
        Printf.eprintf "dynamic error: %s\n" msg;
        1
      | exception Xd_lang.Value.Type_error msg ->
        Printf.eprintf "type error: %s\n" msg;
        1
      | exception Xd_xrpc.Message.Xrpc_fault { host; code; reason } ->
        Printf.eprintf "xrpc fault from %s: %s: %s\n" host
          (Xd_xrpc.Message.fault_code_to_string code)
          reason;
        print_breakers ();
        export_trace ();
        dump_metrics ();
        log_query "fault";
        1
      | exception Xd_xrpc.Message.Xrpc_timeout { host; attempts } ->
        Printf.eprintf "xrpc timeout: %s did not answer (%d attempts)\n" host
          attempts;
        print_breakers ();
        export_trace ();
        dump_metrics ();
        log_query "timeout";
        1
      | r ->
        print_endline (Xd_lang.Value.serialize r.Xd_core.Executor.value);
        if explain then explain_analyze ();
        if show_catalog then
          Option.iter
            (Format.printf "%a@." Xd_topo.Catalog.pp)
            net.Xd_xrpc.Network.catalog;
        if stats then begin
          if Xd_xrpc.Stats.is_empty net.Xd_xrpc.Network.stats then
            Printf.eprintf "strategy: %s\n(no remote activity)\n"
              (Xd_core.Strategy.to_string strategy)
          else begin
          let t = r.Xd_core.Executor.timing in
          Printf.eprintf
            "strategy: %s\nmessages: %d (%d bytes), documents fetched: %d \
             bytes\ntimes: wall %.3fms, serialize %.3fms, shred %.3fms, \
             remote %.3fms, network(sim) %.3fms\n"
            (Xd_core.Strategy.to_string strategy)
            t.Xd_core.Executor.messages t.Xd_core.Executor.message_bytes
            t.Xd_core.Executor.document_bytes
            (t.Xd_core.Executor.wall_s *. 1000.)
            (t.Xd_core.Executor.serialize_s *. 1000.)
            (t.Xd_core.Executor.shred_s *. 1000.)
            (t.Xd_core.Executor.remote_exec_s *. 1000.)
            (t.Xd_core.Executor.network_s *. 1000.);
          Printf.eprintf
            "faults: injected %d, timeouts %d, retries %d, fallbacks %d, \
             dedup-hits %d\n"
            t.Xd_core.Executor.faults t.Xd_core.Executor.timeouts
            t.Xd_core.Executor.retries t.Xd_core.Executor.fallbacks
            t.Xd_core.Executor.dedup_hits;
          if
            t.Xd_core.Executor.txn_commits > 0
            || t.Xd_core.Executor.txn_aborts > 0
            || t.Xd_core.Executor.txn_staged > 0
          then
            Printf.eprintf "txn: staged %d, commits %d, aborts %d\n"
              t.Xd_core.Executor.txn_staged t.Xd_core.Executor.txn_commits
              t.Xd_core.Executor.txn_aborts;
          if
            t.Xd_core.Executor.topo_resolutions > 0
            || t.Xd_core.Executor.forwarded > 0
            || t.Xd_core.Executor.topo_failovers > 0
            || t.Xd_core.Executor.topo_epoch_aborts > 0
          then
            Printf.eprintf
              "topo: resolutions %d, forwarded %d, failovers %d, \
               epoch-aborts %d\n"
              t.Xd_core.Executor.topo_resolutions
              t.Xd_core.Executor.forwarded
              t.Xd_core.Executor.topo_failovers
              t.Xd_core.Executor.topo_epoch_aborts;
          (match Xd_xrpc.Stats.down_peers net.Xd_xrpc.Network.stats with
          | [] -> ()
          | ps -> Printf.eprintf "peers down: %s\n" (String.concat ", " ps));
          if t.Xd_core.Executor.sched_groups > 0 then
            Printf.eprintf
              "sched: groups %d, overlapped calls %d, saved %.3fms \
               (sim)\nbatch: envelopes %d, calls %d\n"
              t.Xd_core.Executor.sched_groups
              t.Xd_core.Executor.sched_overlapped
              (t.Xd_core.Executor.sched_saved_s *. 1000.)
              t.Xd_core.Executor.batch_envelopes
              t.Xd_core.Executor.batch_calls;
          if
            t.Xd_core.Executor.ov_admitted > 0
            || t.Xd_core.Executor.ov_shed > 0
            || t.Xd_core.Executor.ov_deadline_rejects > 0
          then
            Printf.eprintf
              "overload: admitted %d, shed %d, deadline-rejects %d, \
               queue-wait %.3fms (sim)\n"
              t.Xd_core.Executor.ov_admitted t.Xd_core.Executor.ov_shed
              t.Xd_core.Executor.ov_deadline_rejects
              (t.Xd_core.Executor.ov_queue_wait_s *. 1000.);
          if
            t.Xd_core.Executor.breaker_opens > 0
            || t.Xd_core.Executor.breaker_shed > 0
            || t.Xd_core.Executor.breaker_probes > 0
            || t.Xd_core.Executor.retry_budget_stops > 0
          then
            Printf.eprintf
              "breaker: opens %d, shed %d, probes %d, budget-stops %d\n"
              t.Xd_core.Executor.breaker_opens
              t.Xd_core.Executor.breaker_shed
              t.Xd_core.Executor.breaker_probes
              t.Xd_core.Executor.retry_budget_stops;
          if
            t.Xd_core.Executor.codec_compiled > 0
            || t.Xd_core.Executor.codec_bailouts > 0
          then
            Printf.eprintf
              "codec: compiled %d, decodes %d, event-shreds %d, bailouts %d\n"
              t.Xd_core.Executor.codec_compiled
              t.Xd_core.Executor.codec_decodes
              t.Xd_core.Executor.codec_event_shreds
              t.Xd_core.Executor.codec_bailouts
          end
        end;
        print_breakers ();
        export_trace ();
        dump_metrics ();
        log_query "ok";
        0))

let cmd =
  let doc = "distributed XQuery over simulated XRPC peers" in
  let info = Cmd.info "xdxq" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ docs_arg $ strategy_arg $ explain_arg $ stats_arg
      $ code_motion_arg $ types_arg $ effects_arg $ shapes_arg
      $ no_parallel_arg $ no_codec_arg
      $ no_typing_arg $ verify_plan_arg $ plan_arg $ force_arg
      $ fault_spec_arg $ fault_seed_arg $ timeout_arg $ retries_arg
      $ txn_arg $ journal_dir_arg $ trace_arg $ trace_out_arg
      $ trace_format_arg $ metrics_arg $ metrics_format_arg $ query_log_arg
      $ catalog_arg $ topo_churn_arg
      $ show_catalog_arg $ peer_capacity_arg $ queue_cap_arg
      $ service_time_arg $ deadline_arg $ retry_budget_arg
      $ show_breakers_arg $ query_string_arg $ query_file_arg)

let () = exit (Cmd.eval' cmd)
