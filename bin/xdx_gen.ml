(* xdx-gen — write XMark-shaped benchmark documents to disk, for use with
   the xdxq CLI.

     xdx-gen --persons 100 --seed 42 --out-people people.xml --out-auctions auctions.xml
*)

open Cmdliner

let persons_arg =
  Arg.(value & opt int 100 & info [ "persons"; "p" ] ~docv:"N" ~doc:"Number of persons.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let out_people_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-people" ] ~docv:"FILE" ~doc:"Write the site (people) document here.")

let out_auctions_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out-auctions" ] ~docv:"FILE"
        ~doc:"Write the open-auctions document here.")

let write path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc;
  Printf.printf "wrote %s (%d bytes)\n" path (String.length text)

let run persons seed out_people out_auctions =
  if out_people = None && out_auctions = None then begin
    prerr_endline "nothing to do: give --out-people and/or --out-auctions";
    1
  end
  else begin
    let store = Xd_xml.Store.create () in
    (match out_people with
    | Some path ->
      let d =
        Xd_xml.Store.add store
          (Xd_xml.Doc.of_tree (Xd_xmark.Generator.people_tree ~seed ~persons))
      in
      write path (Xd_xml.Serializer.doc d)
    | None -> ());
    (match out_auctions with
    | Some path ->
      let d =
        Xd_xml.Store.add store
          (Xd_xml.Doc.of_tree (Xd_xmark.Generator.auctions_tree ~seed ~persons))
      in
      write path (Xd_xml.Serializer.doc d)
    | None -> ());
    0
  end

let cmd =
  let doc = "generate XMark-shaped benchmark documents" in
  Cmd.v
    (Cmd.info "xdx-gen" ~version:"1.0" ~doc)
    Term.(const run $ persons_arg $ seed_arg $ out_people_arg $ out_auctions_arg)

let () = exit (Cmd.eval' cmd)
