(* Quickstart: run an XQuery locally, then distribute the same query over
   two peers and compare the strategies.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. A purely local query: parse a document, run XQuery over it. *)
  let store = Xd_xml.Store.create () in
  let _doc =
    Xd_xml.Parser.parse ~store ~uri:"team.xml"
      {|<team>
          <member><name>Ying</name><role>phd</role></member>
          <member><name>Nan</name><role>postdoc</role></member>
          <member><name>Peter</name><role>prof</role></member>
        </team>|}
  in
  let result =
    Xd_lang.Eval.run store
      {|for $m in doc("team.xml")/team/member
        where $m/role != "prof"
        return <junior>{string($m/name)}</junior>|}
  in
  print_endline "-- local query --";
  print_endline (Xd_lang.Value.serialize result);

  (* 2. The same data split over two peers of a (simulated) network. *)
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let hr = Xd_xrpc.Network.new_peer net "hr.example.org" in
  let payroll = Xd_xrpc.Network.new_peer net "payroll.example.org" in
  ignore
    (Xd_xrpc.Peer.load_xml hr ~doc_name:"members.xml"
       {|<team>
           <member id="m1"><name>Ying</name><role>phd</role></member>
           <member id="m2"><name>Nan</name><role>postdoc</role></member>
           <member id="m3"><name>Peter</name><role>prof</role></member>
         </team>|});
  ignore
    (Xd_xrpc.Peer.load_xml payroll ~doc_name:"salaries.xml"
       {|<salaries>
           <salary ref="m1">2200</salary>
           <salary ref="m2">3300</salary>
           <salary ref="m3">6400</salary>
         </salaries>|});

  (* a join across the two peers, written as plain XQuery over xrpc:// URIs *)
  let query =
    Xd_lang.Parser.parse_query
      {|for $m in doc("xrpc://hr.example.org/members.xml")/child::team/child::member
        for $s in doc("xrpc://payroll.example.org/salaries.xml")/child::salaries/child::salary
        where $m/attribute::id = $s/attribute::ref and $m/child::role != "prof"
        return element pay { attribute who { string($m/child::name) }, string($s) }|}
  in

  print_endline "\n-- distributed query, per strategy --";
  List.iter
    (fun strategy ->
      let r = Xd_core.Executor.run net ~client strategy query in
      Printf.printf "%-20s  %5d message bytes, %6d document bytes -> %s\n"
        (Xd_core.Strategy.to_string strategy)
        r.Xd_core.Executor.timing.Xd_core.Executor.message_bytes
        r.Xd_core.Executor.timing.Xd_core.Executor.document_bytes
        (Xd_lang.Value.serialize r.Xd_core.Executor.value))
    Xd_core.Strategy.all;

  (* 3. Inspect what the decomposer did under pass-by-fragment. *)
  print_endline "\n-- pass-by-fragment plan --";
  let plan = Xd_core.Decompose.decompose Xd_core.Strategy.By_fragment query in
  Format.printf "%a" Xd_core.Decompose.explain plan
