(* The paper's Section VII benchmark at a small scale: the XMark semijoin
   over two peers, executed under all four strategies, with the cost
   breakdown of Fig. 8.

     dune exec examples/xmark_distributed.exe
*)

module E = Xd_core.Executor

let benchmark_query =
  {|(let $t := let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
               return for $x in $s return if ($x/descendant::age < 40) then $x else ()
     return for $e in (let $c := doc("xrpc://peer2/xmk.auctions.xml")
                       return $c/descendant::open_auction)
            return if ($e/child::seller/attribute::person = $t/attribute::id)
                   then $e/child::annotation else ())/child::author|}

let () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let peer1 = Xd_xrpc.Network.new_peer net "peer1" in
  let peer2 = Xd_xrpc.Network.new_peer net "peer2" in
  let b1, b2 =
    Xd_xmark.Generator.load_pair ~persons:120 ~people_peer:peer1
      ~auctions_peer:peer2 ~people_doc:"xmk.xml"
      ~auctions_doc:"xmk.auctions.xml" ()
  in
  Printf.printf "documents: people %d bytes at peer1, auctions %d bytes at peer2\n\n"
    b1 b2;
  let q = Xd_lang.Parser.parse_query benchmark_query in
  let reference = E.run_local net ~client q in
  Printf.printf "reference result: %d author nodes\n\n"
    (List.length reference);
  Printf.printf "%-20s %9s %9s %6s   %8s %8s %8s %8s\n" "strategy" "msg B"
    "doc B" "equal" "ser ms" "shred ms" "remote ms" "net ms";
  List.iter
    (fun strategy ->
      let r = E.run net ~client strategy q in
      let t = r.E.timing in
      Printf.printf "%-20s %9d %9d %6b   %8.2f %8.2f %8.2f %8.3f\n"
        (Xd_core.Strategy.to_string strategy)
        t.E.message_bytes t.E.document_bytes
        (Xd_lang.Value.deep_equal r.E.value reference)
        (t.E.serialize_s *. 1000.) (t.E.shred_s *. 1000.)
        (t.E.remote_exec_s *. 1000.) (t.E.network_s *. 1000.))
    Xd_core.Strategy.all
