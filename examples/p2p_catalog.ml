(* A small peer-to-peer catalog federation: three data peers, a querying
   client, and a look inside the machinery — the dependency graph
   (exported as Graphviz), the interesting decomposition points per
   strategy, and the actual messages of the winning plan.

     dune exec examples/p2p_catalog.exe
*)

module S = Xd_core.Strategy
module E = Xd_core.Executor

let query_src =
  {|let $wanted := doc("preferences.xml")/child::prefs/child::genre
    return for $b in doc("xrpc://books.example/catalog.xml")/child::catalog/child::book
           for $r in doc("xrpc://reviews.example/reviews.xml")/child::reviews/child::review
           where $b/attribute::genre = $wanted and $r/attribute::book = $b/attribute::id
                 and $r/child::stars > 3
           return element hit {
                    attribute title { string($b/child::title) },
                    $r/child::summary }|}

let () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let books = Xd_xrpc.Network.new_peer net "books.example" in
  let reviews = Xd_xrpc.Network.new_peer net "reviews.example" in

  ignore
    (Xd_xrpc.Peer.load_xml client ~doc_name:"preferences.xml"
       {|<prefs><genre>systems</genre></prefs>|});
  ignore
    (Xd_xrpc.Peer.load_xml books ~doc_name:"catalog.xml"
       {|<catalog>
           <book id="b1" genre="systems"><title>The Art of Shipping Functions</title><price>30</price></book>
           <book id="b2" genre="poetry"><title>Odes to Node Identity</title><price>12</price></book>
           <book id="b3" genre="systems"><title>Fragments of a Protocol</title><price>25</price></book>
         </catalog>|});
  ignore
    (Xd_xrpc.Peer.load_xml reviews ~doc_name:"reviews.xml"
       {|<reviews>
           <review book="b1"><stars>5</stars><summary>pushes all the right predicates</summary></review>
           <review book="b1"><stars>2</stars><summary>too conservative for me</summary></review>
           <review book="b3"><stars>4</stars><summary>keeps its structure intact</summary></review>
           <review book="b2"><stars>5</stars><summary>deeply moving</summary></review>
         </reviews>|});

  let q = Xd_lang.Parser.parse_query query_src in

  (* 1. static check, then the d-graph of the normalized query *)
  (match Xd_lang.Static.check q with
  | [] -> print_endline "static check: ok"
  | es ->
    List.iter (fun e -> Format.printf "static error: %a@." Xd_lang.Static.pp_error e) es);
  let normalized = Xd_core.Normalize.normalize_query (Xd_core.Inline.inline_query q) in
  let g = Xd_dgraph.Dgraph.build normalized.Xd_lang.Ast.body in
  let dot = Xd_dgraph.Dot.to_dot ~name:"catalog_query" g in
  let dot_path = Filename.temp_file "xdx_dgraph" ".dot" in
  let oc = open_out dot_path in
  output_string oc dot;
  close_out oc;
  Printf.printf "d-graph: %d vertices, Graphviz written to %s\n"
    (List.length (Xd_dgraph.Dgraph.vertices g))
    dot_path;

  (* 2. what each strategy decides to push *)
  print_endline "\ndecomposition per strategy:";
  List.iter
    (fun strat ->
      let plan = Xd_core.Decompose.decompose strat q in
      Printf.printf "  %-20s d-points=%2d i-points=%2d pushed=%d\n"
        (S.to_string strat)
        (List.length plan.Xd_core.Decompose.d_points)
        (List.length plan.Xd_core.Decompose.i_points)
        (List.length plan.Xd_core.Decompose.inserted))
    [ S.By_value; S.By_fragment; S.By_projection ];

  (* 3. run it, recording messages under by-projection *)
  let record = ref [] in
  let r = E.run ~record net ~client S.By_projection q in
  Printf.printf "\nby-projection result:\n%s\n"
    (Xd_lang.Value.serialize r.E.value);
  let msgs = List.rev !record in
  Printf.printf "\n%d messages, %d bytes total:\n" (List.length msgs)
    r.E.timing.E.message_bytes;
  List.iteri
    (fun i m ->
      let tag =
        match m.Xd_xrpc.Session.dir with
        | `Request _ -> "->"
        | `Response _ -> "<-"
      in
      Printf.printf "  %2d %s %d bytes\n" (i + 1) tag
        (String.length m.Xd_xrpc.Session.text))
    msgs;

  (* 4. the reference check every strategy must pass *)
  let reference = E.run_local net ~client q in
  Printf.printf "\ndeep-equal to local semantics: %b\n"
    (Xd_lang.Value.deep_equal r.E.value reference)
