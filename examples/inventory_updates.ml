(* Distributed XQuery Update Facility (the paper's Section IX future work,
   implemented here): updates execute at the single peer that owns their
   target — the decomposer identifies that peer at compile time, ships the
   updating subquery there, and refuses queries whose updates cannot be
   pinned to one peer.

     dune exec examples/inventory_updates.exe
*)

module S = Xd_core.Strategy
module E = Xd_core.Executor

let () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let warehouse = Xd_xrpc.Network.new_peer net "warehouse.example" in
  ignore
    (Xd_xrpc.Peer.load_xml warehouse ~doc_name:"inventory.xml"
       {|<inventory>
           <item sku="anchor"><stock>12</stock></item>
           <item sku="broom"><stock>0</stock></item>
           <item sku="crate"><stock>3</stock></item>
           <item sku="dynamo"><stock>0</stock></item>
         </inventory>|});

  let show label =
    let d = Option.get (Xd_xrpc.Peer.find_doc warehouse "inventory.xml") in
    Printf.printf "%s\n  %s\n" label (Xd_xml.Serializer.doc d)
  in
  show "warehouse before:";

  (* prune the items that are out of stock — the delete targets live at the
     warehouse, so the whole loop ships there *)
  let prune =
    Xd_lang.Parser.parse_query
      {|for $i in doc("xrpc://warehouse.example/inventory.xml")/child::inventory/child::item
        return if ($i/child::stock = 0) then delete node $i else ()|}
  in
  let plan = Xd_core.Decompose.decompose S.By_fragment prune in
  Format.printf "\nprune plan:\n%a@." Xd_core.Decompose.explain plan;
  let r = E.run net ~client S.By_fragment prune in
  Printf.printf "prune ran over %d messages, %d bytes\n\n"
    r.E.timing.E.messages r.E.timing.E.message_bytes;
  show "warehouse after pruning:";

  (* restock, with the amount computed at the client *)
  let restock =
    Xd_lang.Parser.parse_query
      {|let $amount := 5 + 2
        return for $i in doc("xrpc://warehouse.example/inventory.xml")/child::inventory/child::item
               return if ($i/child::stock < 5)
                      then replace value of node $i/child::stock with $amount
                      else ()|}
  in
  let _ = E.run net ~client S.By_projection restock in
  show "\nwarehouse after restocking:";

  (* an update that cannot be pinned to one peer is rejected at compile
     time *)
  let other = Xd_xrpc.Network.new_peer net "other.example" in
  ignore (Xd_xrpc.Peer.load_xml other ~doc_name:"d.xml" "<r><x/></r>");
  let entangled =
    Xd_lang.Parser.parse_query
      {|delete node (doc("xrpc://warehouse.example/inventory.xml")/child::inventory/child::item
                     union doc("xrpc://other.example/d.xml")/child::r/child::x)[1]|}
  in
  (match Xd_core.Decompose.decompose S.By_fragment entangled with
  | exception Xd_core.Decompose.Update_placement msg ->
    Printf.printf "\nentangled update rejected, as the paper requires:\n  %s\n" msg
  | _ -> print_endline "\nunexpectedly accepted!");

  (* and running an update over a data-shipped copy is refused at runtime *)
  let ds =
    Xd_lang.Parser.parse_query
      {|delete node (doc("xrpc://warehouse.example/inventory.xml")/child::inventory/child::item)[1]|}
  in
  match E.run net ~client S.Data_shipping ds with
  | exception Xd_lang.Env.Dynamic_error msg ->
    Printf.printf "\ndata-shipping update refused at runtime:\n  %s\n" msg
  | _ -> print_endline "\nunexpectedly applied to a copy!"
