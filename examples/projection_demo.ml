(* Runtime XML projection in action (Section VI).

   Shows the three message-passing semantics on the paper's makenodes()
   scenario: reverse navigation on a shipped node fails under pass-by-value
   and pass-by-fragment, and works under pass-by-projection because the
   projection paths announce the parent::a demand (Fig. 5). Also prints the
   actual messages and the Algorithm 1 run on the Fig. 6 tree.

     dune exec examples/projection_demo.exe
*)

module M = Xd_xrpc.Message

let query =
  {|declare function makenodes() { (element a { element b { element c {()} } })/child::b };
    let $bc := execute at {"example.org"} { makenodes() }
    return count($bc/parent::a)|}

let run passing =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let _server = Xd_xrpc.Network.new_peer net "example.org" in
  let record = ref [] in
  let session = Xd_xrpc.Session.create ~record net client passing in
  let q = Xd_lang.Parser.parse_query query in
  let q = Xd_core.Inline.inline_query q in
  if passing = M.By_projection then
    Xd_core.Projection_fill.fill ~funcs:q.Xd_lang.Ast.funcs q.Xd_lang.Ast.body;
  let v = Xd_xrpc.Session.execute session q in
  (Xd_lang.Value.serialize v, List.rev !record)

let () =
  print_endline "query: ship makenodes() result, then navigate parent::a\n";
  List.iter
    (fun passing ->
      let result, msgs = run passing in
      Printf.printf "%-18s -> count($bc/parent::a) = %s\n"
        (M.passing_to_string passing)
        result;
      if passing = M.By_projection then begin
        print_endline "\n  messages under pass-by-projection:";
        List.iter
          (fun r ->
            let tag =
              match r.Xd_xrpc.Session.dir with
              | `Request _ -> "request "
              | `Response _ -> "response"
            in
            Printf.printf "  [%s] %s\n" tag r.Xd_xrpc.Session.text)
          msgs
      end)
    [ M.By_value; M.By_fragment; M.By_projection ];

  (* Algorithm 1 on the Fig. 6 tree *)
  print_endline "\nAlgorithm 1 on the Fig. 6 tree, U={i}, R={d,k}:";
  let store = Xd_xml.Store.create () in
  let d =
    Xd_xml.Parser.parse ~store ~uri:"fig6.xml"
      "<a><b><c><d><e/><f/></d><g><h/></g></c><i/><k><l/><m/></k></b><j><n/></j><o/></a>"
  in
  let by_name nm =
    List.find
      (fun n -> Xd_xml.Node.name n = nm)
      (Xd_xml.Node.descendants (Xd_xml.Node.doc_node d))
  in
  let pr =
    Xd_projection.Runtime.project
      ~used:[ by_name "i" ]
      ~returned:[ by_name "d"; by_name "k" ]
      d
  in
  Printf.printf "  original:  %s\n" (Xd_xml.Serializer.doc d);
  Printf.printf "  projected: %s\n" (Xd_xml.Serializer.doc pr.Xd_projection.Runtime.doc);
  Printf.printf "  kept %d of %d nodes\n" pr.Xd_projection.Runtime.kept
    (Xd_xml.Doc.n_nodes d - 1)
