(* The paper's introduction example: employees stored locally, departments
   at a remote XRPC-capable peer. The decomposer pushes the department
   predicate to the remote side instead of fetching the whole document.

     dune exec examples/federated_join.exe
*)

let employees =
  {|<employees>
      <emp dept="sales"><name>Iris</name></emp>
      <emp dept="engineering"><name>Joao</name></emp>
      <emp dept="catering"><name>Kim</name></emp>
      <emp dept="engineering"><name>Lena</name></emp>
    </employees>|}

(* the remote document is large: many departments, each with bulky data the
   query never needs *)
let depts =
  let dept i name =
    Printf.sprintf
      "<dept name=%S><building>%d</building><budget>%d</budget><notes>%s</notes></dept>"
      name i (100000 + (i * 13))
      (String.concat " " (List.init 40 (fun _ -> "lorem")))
  in
  "<depts>"
  ^ String.concat ""
      (List.mapi dept
         ([ "sales"; "engineering" ]
         @ List.init 60 (fun i -> Printf.sprintf "aux%d" i)))
  ^ "</depts>"

let query =
  {|for $e in doc("employees.xml")/child::employees/child::emp
    where $e/attribute::dept = doc("xrpc://example.org/depts.xml")/child::depts/child::dept/attribute::name
    return $e|}

let () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let remote = Xd_xrpc.Network.new_peer net "example.org" in
  ignore (Xd_xrpc.Peer.load_xml client ~doc_name:"employees.xml" employees);
  ignore (Xd_xrpc.Peer.load_xml remote ~doc_name:"depts.xml" depts);

  let q = Xd_lang.Parser.parse_query query in

  print_endline "query:";
  print_endline query;
  Printf.printf "\nremote document size: %d bytes\n\n" (String.length depts);

  List.iter
    (fun strategy ->
      let r = Xd_core.Executor.run net ~client strategy q in
      let t = r.Xd_core.Executor.timing in
      Printf.printf "%-20s shipped %6d bytes (%d msgs, %d docs)  result: %s\n"
        (Xd_core.Strategy.to_string strategy)
        (t.Xd_core.Executor.message_bytes + t.Xd_core.Executor.document_bytes)
        t.Xd_core.Executor.messages
        (t.Xd_core.Executor.document_bytes / max 1 (String.length depts))
        (Xd_lang.Value.serialize r.Xd_core.Executor.value))
    Xd_core.Strategy.all;

  print_endline "\npass-by-fragment plan:";
  Format.printf "%a"
    Xd_core.Decompose.explain
    (Xd_core.Decompose.decompose Xd_core.Strategy.By_fragment q)
